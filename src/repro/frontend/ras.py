"""Return address stack (Table 1: 16 entries).

A fixed-depth circular stack: pushing past the top overwrites the oldest
entry, and popping an empty stack returns None (forcing a target
misprediction on the corresponding return).
"""

from __future__ import annotations


class ReturnAddressStack:
    """Fixed-depth circular return address stack."""

    def __init__(self, depth: int = 16):
        self.depth = depth
        self._stack: list[int] = []

    def push(self, return_pc: int) -> None:
        if len(self._stack) >= self.depth:
            # Circular overwrite: the deepest (oldest) entry is lost.
            self._stack.pop(0)
        self._stack.append(return_pc)

    def pop(self) -> int | None:
        if not self._stack:
            return None
        return self._stack.pop()

    def peek(self) -> int | None:
        return self._stack[-1] if self._stack else None

    def clear(self) -> None:
        self._stack.clear()

    def __len__(self) -> int:
        return len(self._stack)
