"""Front-end substrate: branch direction predictors, BTB and RAS.

Table 1 of the paper specifies a combined bimodal (4k entries) / gshare (4k)
predictor with a 4k-entry selector, a 16-entry return address stack, and a
1k-entry 4-way BTB; fetch stops at the first taken branch in a cycle.
"""

from repro.frontend.direction import (
    BimodalPredictor,
    CombinedPredictor,
    GSharePredictor,
    SaturatingCounter,
)
from repro.frontend.btb import BranchTargetBuffer
from repro.frontend.ras import ReturnAddressStack
from repro.frontend.branch_unit import BranchPrediction, BranchUnit

__all__ = [
    "BimodalPredictor",
    "CombinedPredictor",
    "GSharePredictor",
    "SaturatingCounter",
    "BranchTargetBuffer",
    "ReturnAddressStack",
    "BranchPrediction",
    "BranchUnit",
]
