"""Branch direction predictors: bimodal, gshare and a combined selector.

All predictors follow the same two-call protocol::

    taken = predictor.predict(pc)
    ...                       # later, when the branch resolves
    predictor.update(pc, actual_taken)

The combined predictor (McFarling-style, as shipped in the Alpha 21264 and
SimpleScalar) keeps both component predictions from the most recent
``predict`` internally so that ``update`` can train the selector.
"""

from __future__ import annotations

from repro.errors import ConfigurationError


class SaturatingCounter:
    """An n-bit saturating up/down counter.

    The counter predicts "taken"/"strong" when in the upper half of its
    range.  Used by direction predictors and by the last-arriving operand
    predictor in ``repro.core.last_arrival``.
    """

    __slots__ = ("value", "maximum")

    def __init__(self, bits: int = 2, initial: int | None = None):
        if bits < 1:
            raise ConfigurationError("counter needs at least one bit")
        self.maximum = (1 << bits) - 1
        # Default: weakly-taken (just above the midpoint).
        self.value = (self.maximum + 1) // 2 if initial is None else initial

    def increment(self) -> None:
        if self.value < self.maximum:
            self.value += 1

    def decrement(self) -> None:
        if self.value > 0:
            self.value -= 1

    def train(self, outcome: bool) -> None:
        if outcome:
            self.increment()
        else:
            self.decrement()

    @property
    def predict(self) -> bool:
        return self.value > self.maximum // 2


def _check_power_of_two(entries: int, what: str) -> None:
    if entries <= 0 or entries & (entries - 1):
        raise ConfigurationError(f"{what} table size must be a power of two")


class BimodalPredictor:
    """PC-indexed table of 2-bit saturating counters."""

    def __init__(self, entries: int = 4096, bits: int = 2):
        _check_power_of_two(entries, "bimodal")
        self.entries = entries
        self._mask = entries - 1
        self._table = [SaturatingCounter(bits) for _ in range(entries)]

    def _index(self, pc: int) -> int:
        return pc & self._mask

    def predict(self, pc: int) -> bool:
        return self._table[self._index(pc)].predict

    def update(self, pc: int, taken: bool) -> None:
        self._table[self._index(pc)].train(taken)


class GSharePredictor:
    """Global-history predictor: PC XOR history indexes a counter table."""

    def __init__(self, entries: int = 4096, history_bits: int = 12, bits: int = 2):
        _check_power_of_two(entries, "gshare")
        self.entries = entries
        self._mask = entries - 1
        self._history_mask = (1 << history_bits) - 1
        self.history = 0
        self._table = [SaturatingCounter(bits) for _ in range(entries)]

    def _index(self, pc: int) -> int:
        return (pc ^ self.history) & self._mask

    def predict(self, pc: int) -> bool:
        return self._table[self._index(pc)].predict

    def update(self, pc: int, taken: bool) -> None:
        """Train the counter, then shift the outcome into the history."""
        self._table[self._index(pc)].train(taken)
        self.history = ((self.history << 1) | int(taken)) & self._history_mask


class CombinedPredictor:
    """McFarling combined predictor: bimodal + gshare + selector.

    The selector is a table of 2-bit counters indexed by PC; high values
    favour the gshare component.  It trains only when the two components
    disagree.
    """

    def __init__(
        self,
        bimodal_entries: int = 4096,
        gshare_entries: int = 4096,
        selector_entries: int = 4096,
        history_bits: int = 12,
    ):
        _check_power_of_two(selector_entries, "selector")
        self.bimodal = BimodalPredictor(bimodal_entries)
        self.gshare = GSharePredictor(gshare_entries, history_bits)
        self._selector = [SaturatingCounter(2) for _ in range(selector_entries)]
        self._selector_mask = selector_entries - 1

    def predict(self, pc: int) -> bool:
        use_gshare = self._selector[pc & self._selector_mask].predict
        if use_gshare:
            return self.gshare.predict(pc)
        return self.bimodal.predict(pc)

    def update(self, pc: int, taken: bool) -> None:
        bimodal_said = self.bimodal.predict(pc)
        gshare_said = self.gshare.predict(pc)
        if bimodal_said != gshare_said:
            self._selector[pc & self._selector_mask].train(gshare_said == taken)
        self.bimodal.update(pc, taken)
        self.gshare.update(pc, taken)
