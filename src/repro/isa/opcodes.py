"""Opcode and operation-class definitions for HPRISC.

Each opcode belongs to an :class:`OpClass`, which determines which functional
unit executes it and its nominal latency (configured per machine in
``repro.pipeline.config``).  The *format* of an opcode records how many
register source fields it carries, which is what the paper's Figure 2/3
characterization is about.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class OpClass(enum.Enum):
    """Functional-unit class of an operation."""

    INT_ALU = "int_alu"
    INT_MULT = "int_mult"
    INT_DIV = "int_div"
    FP_ALU = "fp_alu"
    FP_MULT = "fp_mult"
    FP_DIV = "fp_div"
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"
    JUMP = "jump"
    NOP = "nop"
    HALT = "halt"

    @property
    def is_memory(self) -> bool:
        return self in (OpClass.LOAD, OpClass.STORE)

    @property
    def is_control(self) -> bool:
        return self in (OpClass.BRANCH, OpClass.JUMP)


# Dense integer index per class, for list-based lookup tables in the hot
# simulation loop (enum hashing is measurably slow in CPython).
for _index, _member in enumerate(OpClass):
    _member.idx = _index
del _index, _member


class Format(enum.Enum):
    """Instruction encoding format (number and role of register fields).

    Mirrors the paper's Section 2.3: the Alpha ISA has four major format
    classes with 0, 1, 2 or 3 register fields, supporting up to two source
    registers and one destination register.
    """

    #: No register fields (unconditional branch to label, nop, halt).
    ZERO_REG = 0
    #: One register field (e.g. load-immediate destination).
    ONE_REG = 1
    #: Two register fields (e.g. conditional branch source + implied target,
    #: load ``rd, off(ra)``, register-indirect jump).
    TWO_REG = 2
    #: Three register fields (operate format ``op rd, ra, rb``).
    THREE_REG = 3


@dataclass(frozen=True)
class Opcode:
    """Static description of one HPRISC opcode."""

    name: str
    op_class: OpClass
    fmt: Format
    #: Number of register *source* fields in the encoding (0, 1 or 2).
    num_src_fields: int
    #: True if the encoding carries a destination register field.
    has_dest: bool
    #: True if the operate form takes an immediate instead of ``rb``.
    allows_imm: bool = False

    def __str__(self) -> str:  # pragma: no cover - debugging nicety
        return self.name


def _op(name, op_class, fmt, num_src, has_dest, allows_imm=False):
    return Opcode(name, op_class, fmt, num_src, has_dest, allows_imm)


#: All HPRISC opcodes, keyed by mnemonic.
OPCODE_BY_NAME: dict[str, Opcode] = {
    op.name: op
    for op in [
        # Integer operate format: op rd, ra, rb  |  op rd, ra, #imm
        _op("ADD", OpClass.INT_ALU, Format.THREE_REG, 2, True, True),
        _op("SUB", OpClass.INT_ALU, Format.THREE_REG, 2, True, True),
        _op("AND", OpClass.INT_ALU, Format.THREE_REG, 2, True, True),
        _op("OR", OpClass.INT_ALU, Format.THREE_REG, 2, True, True),
        _op("XOR", OpClass.INT_ALU, Format.THREE_REG, 2, True, True),
        _op("SLL", OpClass.INT_ALU, Format.THREE_REG, 2, True, True),
        _op("SRL", OpClass.INT_ALU, Format.THREE_REG, 2, True, True),
        _op("CMPEQ", OpClass.INT_ALU, Format.THREE_REG, 2, True, True),
        _op("CMPLT", OpClass.INT_ALU, Format.THREE_REG, 2, True, True),
        _op("CMPLE", OpClass.INT_ALU, Format.THREE_REG, 2, True, True),
        _op("MUL", OpClass.INT_MULT, Format.THREE_REG, 2, True, True),
        _op("DIV", OpClass.INT_DIV, Format.THREE_REG, 2, True, True),
        # Floating point operate format.
        _op("ADDF", OpClass.FP_ALU, Format.THREE_REG, 2, True),
        _op("SUBF", OpClass.FP_ALU, Format.THREE_REG, 2, True),
        _op("CMPFEQ", OpClass.FP_ALU, Format.THREE_REG, 2, True),
        _op("CMPFLT", OpClass.FP_ALU, Format.THREE_REG, 2, True),
        _op("MULF", OpClass.FP_MULT, Format.THREE_REG, 2, True),
        _op("DIVF", OpClass.FP_DIV, Format.THREE_REG, 2, True),
        # Register moves / immediates.
        _op("LDI", OpClass.INT_ALU, Format.ONE_REG, 0, True, True),
        _op("MOV", OpClass.INT_ALU, Format.TWO_REG, 1, True),
        _op("MOVF", OpClass.FP_ALU, Format.TWO_REG, 1, True),
        # Memory format: LDQ rd, off(ra) / STQ rs, off(ra).
        _op("LDQ", OpClass.LOAD, Format.TWO_REG, 1, True),
        _op("LDF", OpClass.LOAD, Format.TWO_REG, 1, True),
        _op("STQ", OpClass.STORE, Format.TWO_REG, 2, False),
        _op("STF", OpClass.STORE, Format.TWO_REG, 2, False),
        # Branch format: cond branches read one register; BR reads none.
        _op("BEQ", OpClass.BRANCH, Format.TWO_REG, 1, False),
        _op("BNE", OpClass.BRANCH, Format.TWO_REG, 1, False),
        _op("BLT", OpClass.BRANCH, Format.TWO_REG, 1, False),
        _op("BGE", OpClass.BRANCH, Format.TWO_REG, 1, False),
        _op("BR", OpClass.BRANCH, Format.ZERO_REG, 0, False),
        # Jumps: JMP (ra) is register indirect; JSR saves the return PC;
        # RET returns through a register.
        _op("JMP", OpClass.JUMP, Format.TWO_REG, 1, False),
        _op("JSR", OpClass.JUMP, Format.TWO_REG, 1, True),
        _op("RET", OpClass.JUMP, Format.TWO_REG, 1, False),
        # Nops and machine control.  NOP2 is a 2-source-format nop (an
        # operate instruction writing the zero register) of the kind DEC
        # compilers emit for alignment; the decoder eliminates it.
        _op("NOP", OpClass.NOP, Format.ZERO_REG, 0, False),
        _op("NOP2", OpClass.NOP, Format.THREE_REG, 2, False),
        _op("HALT", OpClass.HALT, Format.ZERO_REG, 0, False),
    ]
}


#: Opcodes whose execution transfers control.
CONTROL_OPCODES = frozenset(
    name for name, op in OPCODE_BY_NAME.items() if op.op_class.is_control
)

#: Conditional branch opcodes (direction depends on a register value).
CONDITIONAL_BRANCHES = frozenset({"BEQ", "BNE", "BLT", "BGE"})
