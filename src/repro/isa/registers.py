"""Architectural register file layout for HPRISC.

Registers are identified by small integers:

* ``0 .. 31``  — integer registers ``r0`` .. ``r31``
* ``32 .. 63`` — floating-point registers ``f0`` .. ``f31``

``r31`` and ``f31`` are hardwired zero registers, mirroring the Alpha AXP
convention the paper depends on for its Figure 3 breakdown: a source operand
naming a zero register never creates a data dependence, and a destination
naming one turns the instruction into an architectural nop.
"""

from __future__ import annotations

#: Number of integer architectural registers.
NUM_INT_REGS = 32
#: Offset at which floating-point register indices begin.
FP_REG_BASE = 32
#: Total number of architectural registers (integer + floating point).
NUM_ARCH_REGS = 64

#: The integer zero register (Alpha ``r31``).
R31 = 31
#: The floating-point zero register (Alpha ``f31``).
F31 = FP_REG_BASE + 31

#: The set of architectural zero registers.
ZERO_REGS = frozenset({R31, F31})


def is_fp_reg(reg: int) -> bool:
    """Return True if *reg* indexes a floating-point register."""
    return FP_REG_BASE <= reg < NUM_ARCH_REGS


def is_zero_reg(reg: int) -> bool:
    """Return True if *reg* is one of the hardwired zero registers."""
    return reg in ZERO_REGS


def reg_name(reg: int) -> str:
    """Render a register index as its assembly name (``r4``, ``f2``...)."""
    if not 0 <= reg < NUM_ARCH_REGS:
        raise ValueError(f"register index out of range: {reg}")
    if is_fp_reg(reg):
        return f"f{reg - FP_REG_BASE}"
    return f"r{reg}"


def parse_reg(token: str) -> int:
    """Parse an assembly register name into its index.

    Raises ``ValueError`` for anything that is not a valid register name.
    """
    token = token.strip().lower()
    if len(token) < 2 or token[0] not in ("r", "f"):
        raise ValueError(f"not a register name: {token!r}")
    try:
        number = int(token[1:], 10)
    except ValueError:
        raise ValueError(f"not a register name: {token!r}") from None
    if not 0 <= number < NUM_INT_REGS:
        raise ValueError(f"register number out of range: {token!r}")
    if token[0] == "f":
        return FP_REG_BASE + number
    return number
