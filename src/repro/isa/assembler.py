"""Two-pass assembler for HPRISC assembly source.

Syntax overview::

    ; line comment (also "//")
    loop:                    ; label
        LDI   r1, 100        ; load immediate
        ADD   r2, r1, r3     ; operate, register form
        ADD   r2, r1, #4     ; operate, immediate form
        NOP2  r1, r2         ; 2-source-format alignment nop
        LDQ   r4, 8(r2)      ; load, displacement addressing
        STQ   r4, 0(r2)      ; store
        BEQ   r1, loop       ; conditional branch to label
        BR    done           ; unconditional branch
        JSR   r26, (r5)      ; call through register, saves return PC
        RET   (r26)          ; return through register
    done:
        HALT

    .data 4096               ; switch to data emission at address 4096
    .word 1 2 3              ; emit 64-bit words at the current data cursor

Instruction addresses are word indices; :meth:`Program.pc_address` maps an
index to a byte address for cache modelling.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.errors import AssemblyError
from repro.isa.instruction import Instruction
from repro.isa.opcodes import OPCODE_BY_NAME, OpClass, Opcode
from repro.isa.registers import R31, parse_reg

#: Byte size of one instruction slot, used to map indices to PC addresses.
INSTRUCTION_BYTES = 4

_LABEL_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")
_MEM_OPERAND_RE = re.compile(r"^(-?\d+)?\(\s*([rf]\d+)\s*\)$")
_INDIRECT_RE = re.compile(r"^\(\s*([rf]\d+)\s*\)$")


@dataclass
class Program:
    """An assembled HPRISC program.

    Attributes:
        instructions: decoded static instructions, indexed by PC.
        labels: label name -> instruction index.
        data: initial data memory contents (byte address -> 64-bit value).
        source_lines: original source line number per instruction (for
            diagnostics), parallel to ``instructions``.
    """

    instructions: list[Instruction] = field(default_factory=list)
    labels: dict[str, int] = field(default_factory=dict)
    data: dict[int, int] = field(default_factory=dict)
    source_lines: list[int] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.instructions)

    def pc_address(self, index: int) -> int:
        """Byte address of the instruction at *index*."""
        return index * INSTRUCTION_BYTES

    def label_of(self, index: int) -> str | None:
        """Reverse-lookup the label pointing at *index*, if any."""
        for name, value in self.labels.items():
            if value == index:
                return name
        return None


def _strip_comment(line: str) -> str:
    # "#" is reserved for immediates, so comments are ";" or "//" only.
    for marker in (";", "//"):
        pos = line.find(marker)
        if pos >= 0:
            line = line[:pos]
    return line.strip()


def _split_operands(rest: str) -> list[str]:
    return [tok.strip() for tok in rest.split(",") if tok.strip()] if rest else []


def _parse_int(token: str, line_number: int) -> int:
    token = token.lstrip("#")
    try:
        return int(token, 0)
    except ValueError:
        raise AssemblyError(f"bad integer literal {token!r}", line_number) from None


class _Assembler:
    """Internal two-pass assembler state machine."""

    def __init__(self, source: str):
        self.source = source
        self.program = Program()
        # (instruction index, label, source line, field): field is "target"
        # for branch targets, "imm" for LDI label immediates.
        self._fixups: list[tuple[int, str, int, str]] = []
        self._data_cursor: int | None = None

    def run(self) -> Program:
        for line_number, raw in enumerate(self.source.splitlines(), start=1):
            line = _strip_comment(raw)
            if not line:
                continue
            self._assemble_line(line, line_number)
        self._apply_fixups()
        return self.program

    # ------------------------------------------------------------------
    def _assemble_line(self, line: str, line_number: int) -> None:
        while ":" in line:
            label, _, line = line.partition(":")
            label = label.strip()
            if not _LABEL_RE.match(label):
                raise AssemblyError(f"bad label {label!r}", line_number)
            if label in self.program.labels:
                raise AssemblyError(f"duplicate label {label!r}", line_number)
            self.program.labels[label] = len(self.program.instructions)
            line = line.strip()
        if not line:
            return
        if line.startswith("."):
            self._assemble_directive(line, line_number)
            return
        mnemonic, _, rest = line.partition(" ")
        opcode = OPCODE_BY_NAME.get(mnemonic.upper())
        if opcode is None:
            raise AssemblyError(f"unknown mnemonic {mnemonic!r}", line_number)
        operands = _split_operands(rest.strip())
        inst = self._build_instruction(opcode, operands, line_number)
        self.program.instructions.append(inst)
        self.program.source_lines.append(line_number)

    def _assemble_directive(self, line: str, line_number: int) -> None:
        name, _, rest = line.partition(" ")
        name = name.lower()
        if name == ".data":
            self._data_cursor = _parse_int(rest.strip(), line_number)
        elif name == ".word":
            if self._data_cursor is None:
                raise AssemblyError(".word before .data", line_number)
            for token in rest.split():
                self.program.data[self._data_cursor] = _parse_int(token, line_number)
                self._data_cursor += 8
        else:
            raise AssemblyError(f"unknown directive {name!r}", line_number)

    # ------------------------------------------------------------------
    def _build_instruction(
        self, opcode: Opcode, operands: list[str], line_number: int
    ) -> Instruction:
        cls = opcode.op_class
        if cls in (OpClass.NOP, OpClass.HALT):
            return self._build_nop_or_halt(opcode, operands, line_number)
        if cls.is_memory:
            return self._build_memory(opcode, operands, line_number)
        if cls is OpClass.BRANCH:
            return self._build_branch(opcode, operands, line_number)
        if cls is OpClass.JUMP:
            return self._build_jump(opcode, operands, line_number)
        return self._build_operate(opcode, operands, line_number)

    def _build_nop_or_halt(self, opcode, operands, line_number) -> Instruction:
        if opcode.name == "NOP2":
            if len(operands) != 2:
                raise AssemblyError("NOP2 takes two source registers", line_number)
            srcs = tuple(self._reg(tok, line_number) for tok in operands)
            return Instruction(opcode, dest=R31, srcs=srcs)
        if operands:
            raise AssemblyError(f"{opcode.name} takes no operands", line_number)
        return Instruction(opcode)

    def _build_operate(self, opcode, operands, line_number) -> Instruction:
        if opcode.name == "LDI":
            if len(operands) != 2:
                raise AssemblyError("LDI takes rd, imm|label", line_number)
            dest = self._reg(operands[0], line_number)
            value = operands[1]
            if _LABEL_RE.match(value) and not value.lstrip("-").isdigit():
                # Label immediate: resolves to the label's instruction index.
                self._fixups.append(
                    (len(self.program.instructions), value, line_number, "imm")
                )
                return Instruction(opcode, dest=dest)
            return Instruction(opcode, dest=dest, imm=_parse_int(value, line_number))
        if opcode.name in ("MOV", "MOVF"):
            if len(operands) != 2:
                raise AssemblyError(f"{opcode.name} takes rd, ra", line_number)
            dest = self._reg(operands[0], line_number)
            src = self._reg(operands[1], line_number)
            return Instruction(opcode, dest=dest, srcs=(src,))
        if len(operands) != 3:
            raise AssemblyError(f"{opcode.name} takes rd, ra, rb|#imm", line_number)
        dest = self._reg(operands[0], line_number)
        src_a = self._reg(operands[1], line_number)
        last = operands[2]
        if last.startswith("#"):
            if not opcode.allows_imm:
                raise AssemblyError(f"{opcode.name} has no immediate form", line_number)
            return Instruction(
                opcode, dest=dest, srcs=(src_a,), imm=_parse_int(last, line_number)
            )
        src_b = self._reg(last, line_number)
        return Instruction(opcode, dest=dest, srcs=(src_a, src_b))

    def _build_memory(self, opcode, operands, line_number) -> Instruction:
        if len(operands) != 2:
            raise AssemblyError(f"{opcode.name} takes rX, off(rY)", line_number)
        reg = self._reg(operands[0], line_number)
        match = _MEM_OPERAND_RE.match(operands[1].replace(" ", ""))
        if not match:
            raise AssemblyError(f"bad memory operand {operands[1]!r}", line_number)
        offset = int(match.group(1) or 0)
        base = self._reg(match.group(2), line_number)
        if opcode.op_class is OpClass.LOAD:
            return Instruction(opcode, dest=reg, srcs=(base,), imm=offset)
        # Store: sources are (data register, base register).
        return Instruction(opcode, srcs=(reg, base), imm=offset)

    def _build_branch(self, opcode, operands, line_number) -> Instruction:
        if opcode.name == "BR":
            if len(operands) != 1:
                raise AssemblyError("BR takes a label", line_number)
            return self._with_label(Instruction(opcode), operands[0], line_number)
        if len(operands) != 2:
            raise AssemblyError(f"{opcode.name} takes ra, label", line_number)
        src = self._reg(operands[0], line_number)
        return self._with_label(
            Instruction(opcode, srcs=(src,)), operands[1], line_number
        )

    def _build_jump(self, opcode, operands, line_number) -> Instruction:
        if opcode.name == "JSR":
            if len(operands) != 2:
                raise AssemblyError("JSR takes rd, (ra)", line_number)
            dest = self._reg(operands[0], line_number)
            base = self._indirect(operands[1], line_number)
            return Instruction(opcode, dest=dest, srcs=(base,))
        if len(operands) != 1:
            raise AssemblyError(f"{opcode.name} takes (ra)", line_number)
        base = self._indirect(operands[0], line_number)
        return Instruction(opcode, srcs=(base,))

    # ------------------------------------------------------------------
    def _reg(self, token: str, line_number: int) -> int:
        try:
            return parse_reg(token)
        except ValueError as exc:
            raise AssemblyError(str(exc), line_number) from None

    def _indirect(self, token: str, line_number: int) -> int:
        match = _INDIRECT_RE.match(token.replace(" ", ""))
        if not match:
            raise AssemblyError(f"bad indirect operand {token!r}", line_number)
        return self._reg(match.group(1), line_number)

    def _with_label(
        self, inst: Instruction, label: str, line_number: int
    ) -> Instruction:
        label = label.strip()
        if not _LABEL_RE.match(label):
            raise AssemblyError(f"bad branch target {label!r}", line_number)
        self._fixups.append((len(self.program.instructions), label, line_number, "target"))
        return inst

    def _apply_fixups(self) -> None:
        from dataclasses import replace

        for index, label, line_number, field_name in self._fixups:
            target = self.program.labels.get(label)
            if target is None:
                raise AssemblyError(f"undefined label {label!r}", line_number)
            self.program.instructions[index] = replace(
                self.program.instructions[index], **{field_name: target}
            )


def assemble(source: str) -> Program:
    """Assemble HPRISC *source* text into a :class:`Program`."""
    return _Assembler(source).run()
