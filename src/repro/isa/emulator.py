"""Functional (architectural) emulator for HPRISC programs.

The emulator executes a :class:`~repro.isa.assembler.Program` at architectural
level: one instruction per step, no timing.  It serves two purposes:

* it lets the example kernels actually run and be checked for correctness;
* it produces the committed dynamic instruction stream that drives the
  execution-driven timing simulator (``repro.workloads.feed``).

Integer registers hold 64-bit two's-complement values; floating-point
registers hold Python floats.  Memory is a sparse dictionary keyed by
8-byte-aligned addresses.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import EmulationError
from repro.isa.assembler import Program
from repro.isa.instruction import Instruction
from repro.isa.opcodes import OpClass
from repro.isa.registers import FP_REG_BASE, NUM_ARCH_REGS, is_fp_reg, is_zero_reg

#: Default step budget: generous, but stops runaway programs.
MAX_STEPS_DEFAULT = 10_000_000

_MASK64 = (1 << 64) - 1


def _to_signed(value: int) -> int:
    value &= _MASK64
    return value - (1 << 64) if value >= (1 << 63) else value


@dataclass(frozen=True)
class ExecutedInstruction:
    """One architecturally executed instruction (a dynamic instance)."""

    pc: int
    instruction: Instruction
    next_pc: int
    taken: bool = False
    mem_addr: int | None = None


class Emulator:
    """Architectural interpreter for HPRISC.

    Example::

        program = assemble(SOURCE)
        emu = Emulator(program)
        emu.run()
        assert emu.int_reg(1) == 42
    """

    def __init__(self, program: Program, entry: int = 0):
        self.program = program
        self.pc = entry
        self.halted = False
        self.steps = 0
        self._int_regs = [0] * 32
        self._fp_regs = [0.0] * 32
        self.memory: dict[int, int | float] = dict(program.data)

    # ------------------------------------------------------------------
    # Register/memory access helpers.
    # ------------------------------------------------------------------
    def read_reg(self, reg: int) -> int | float:
        if is_zero_reg(reg):
            return 0.0 if is_fp_reg(reg) else 0
        if is_fp_reg(reg):
            return self._fp_regs[reg - FP_REG_BASE]
        return self._int_regs[reg]

    def write_reg(self, reg: int, value: int | float) -> None:
        if not 0 <= reg < NUM_ARCH_REGS:
            raise EmulationError(f"register index out of range: {reg}")
        if is_zero_reg(reg):
            return
        if is_fp_reg(reg):
            self._fp_regs[reg - FP_REG_BASE] = float(value)
        else:
            self._int_regs[reg] = _to_signed(int(value))

    def int_reg(self, number: int) -> int:
        """Convenience accessor for integer register ``r<number>``."""
        return self.read_reg(number)

    def fp_reg(self, number: int) -> float:
        """Convenience accessor for floating register ``f<number>``."""
        return self.read_reg(FP_REG_BASE + number)

    def read_mem(self, addr: int) -> int | float:
        return self.memory.get(addr & ~7, 0)

    def write_mem(self, addr: int, value: int | float) -> None:
        self.memory[addr & ~7] = value

    # ------------------------------------------------------------------
    # Execution.
    # ------------------------------------------------------------------
    def step(self) -> ExecutedInstruction:
        """Execute one instruction and return its dynamic record."""
        if self.halted:
            raise EmulationError("emulator is halted")
        if not 0 <= self.pc < len(self.program.instructions):
            raise EmulationError(f"PC out of range: {self.pc}")
        inst = self.program.instructions[self.pc]
        pc = self.pc
        record = self._execute(inst, pc)
        self.pc = record.next_pc
        self.steps += 1
        return record

    def run(self, max_steps: int = MAX_STEPS_DEFAULT) -> int:
        """Run until ``HALT`` or *max_steps*; return executed step count."""
        start = self.steps
        while not self.halted:
            if self.steps - start >= max_steps:
                raise EmulationError(f"exceeded step budget of {max_steps}")
            self.step()
        return self.steps - start

    def __iter__(self):
        """Yield executed instructions until the program halts."""
        while not self.halted:
            yield self.step()

    # ------------------------------------------------------------------
    def _execute(self, inst: Instruction, pc: int) -> ExecutedInstruction:
        cls = inst.op_class
        if cls is OpClass.HALT:
            self.halted = True
            return ExecutedInstruction(pc, inst, pc)
        if cls is OpClass.NOP:
            return ExecutedInstruction(pc, inst, pc + 1)
        if cls is OpClass.LOAD:
            addr = (int(self.read_reg(inst.srcs[0])) + inst.imm) & _MASK64
            self.write_reg(inst.dest, self.read_mem(addr))
            return ExecutedInstruction(pc, inst, pc + 1, mem_addr=addr)
        if cls is OpClass.STORE:
            addr = (int(self.read_reg(inst.srcs[1])) + inst.imm) & _MASK64
            self.write_mem(addr, self.read_reg(inst.srcs[0]))
            return ExecutedInstruction(pc, inst, pc + 1, mem_addr=addr)
        if cls is OpClass.BRANCH:
            taken = self._branch_taken(inst)
            next_pc = inst.target if taken else pc + 1
            return ExecutedInstruction(pc, inst, next_pc, taken=taken)
        if cls is OpClass.JUMP:
            target = int(self.read_reg(inst.srcs[0]))
            if inst.opcode.name == "JSR":
                self.write_reg(inst.dest, pc + 1)
            return ExecutedInstruction(pc, inst, target, taken=True)
        self._execute_operate(inst)
        return ExecutedInstruction(pc, inst, pc + 1)

    def _branch_taken(self, inst: Instruction) -> bool:
        name = inst.opcode.name
        if name == "BR":
            return True
        value = self.read_reg(inst.srcs[0])
        if name == "BEQ":
            return value == 0
        if name == "BNE":
            return value != 0
        if name == "BLT":
            return value < 0
        if name == "BGE":
            return value >= 0
        raise EmulationError(f"unknown branch {name}")

    def _execute_operate(self, inst: Instruction) -> None:
        name = inst.opcode.name
        if name == "LDI":
            self.write_reg(inst.dest, inst.imm)
            return
        if name in ("MOV", "MOVF"):
            self.write_reg(inst.dest, self.read_reg(inst.srcs[0]))
            return
        a = self.read_reg(inst.srcs[0])
        b = self.read_reg(inst.srcs[1]) if len(inst.srcs) == 2 else inst.imm
        self.write_reg(inst.dest, self._alu(name, a, b))

    @staticmethod
    def _alu(name: str, a, b):
        if name == "ADD" or name == "ADDF":
            return a + b
        if name == "SUB" or name == "SUBF":
            return a - b
        if name == "AND":
            return int(a) & int(b)
        if name == "OR":
            return int(a) | int(b)
        if name == "XOR":
            return int(a) ^ int(b)
        if name == "SLL":
            return int(a) << (int(b) & 63)
        if name == "SRL":
            return (int(a) & _MASK64) >> (int(b) & 63)
        if name == "CMPEQ" or name == "CMPFEQ":
            return 1 if a == b else 0
        if name == "CMPLT" or name == "CMPFLT":
            return 1 if a < b else 0
        if name == "CMPLE":
            return 1 if a <= b else 0
        if name in ("MUL", "MULF"):
            return a * b
        if name in ("DIV", "DIVF"):
            if b == 0:
                raise EmulationError("division by zero")
            if name == "DIV":
                quotient = abs(int(a)) // abs(int(b))
                return -quotient if (a < 0) != (b < 0) else quotient
            return a / b
        raise EmulationError(f"unknown operate opcode {name}")
