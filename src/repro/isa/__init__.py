"""HPRISC: a small Alpha-flavoured load/store RISC instruction set.

The paper targets the Alpha AXP ISA.  This package provides an executable
stand-in with the properties the paper relies on:

* four instruction format classes with 0, 1, 2 or 3 register fields,
  supporting up to two source registers and one destination register;
* architectural zero registers (``r31`` and ``f31``) whose reads never
  create dependences and whose writes are discarded;
* stores that carry two source registers but no ``MEM[reg + reg]`` indexing
  mode, so they can be split into an address generation and a data move;
* two-source-format nops (writes to the zero register) that the decoder
  drops without execution, as the Alpha 21264 does.
"""

from repro.isa.registers import (
    F31,
    FP_REG_BASE,
    NUM_ARCH_REGS,
    R31,
    ZERO_REGS,
    is_fp_reg,
    is_zero_reg,
    reg_name,
)
from repro.isa.opcodes import OpClass, Opcode, OPCODE_BY_NAME
from repro.isa.instruction import Instruction
from repro.isa.assembler import Program, assemble
from repro.isa.disassembler import disassemble
from repro.isa.emulator import Emulator, MAX_STEPS_DEFAULT

__all__ = [
    "F31",
    "FP_REG_BASE",
    "NUM_ARCH_REGS",
    "R31",
    "ZERO_REGS",
    "is_fp_reg",
    "is_zero_reg",
    "reg_name",
    "OpClass",
    "Opcode",
    "OPCODE_BY_NAME",
    "Instruction",
    "Program",
    "assemble",
    "disassemble",
    "Emulator",
    "MAX_STEPS_DEFAULT",
]
