"""Disassembler: render decoded instructions back to assembly text."""

from __future__ import annotations

from repro.isa.instruction import Instruction
from repro.isa.opcodes import OpClass
from repro.isa.registers import reg_name


def disassemble(inst: Instruction, label: str | None = None) -> str:
    """Render *inst* as one line of HPRISC assembly.

    ``label`` overrides the numeric branch target with a symbolic name.
    """
    name = inst.opcode.name
    cls = inst.op_class
    target = label if label is not None else (
        str(inst.target) if inst.target is not None else "?"
    )
    if cls in (OpClass.NOP, OpClass.HALT):
        if name == "NOP2":
            return f"NOP2 {reg_name(inst.srcs[0])}, {reg_name(inst.srcs[1])}"
        return name
    if cls is OpClass.LOAD:
        return f"{name} {reg_name(inst.dest)}, {inst.imm}({reg_name(inst.srcs[0])})"
    if cls is OpClass.STORE:
        return f"{name} {reg_name(inst.srcs[0])}, {inst.imm}({reg_name(inst.srcs[1])})"
    if cls is OpClass.BRANCH:
        if name == "BR":
            return f"BR {target}"
        return f"{name} {reg_name(inst.srcs[0])}, {target}"
    if cls is OpClass.JUMP:
        if name == "JSR":
            return f"JSR {reg_name(inst.dest)}, ({reg_name(inst.srcs[0])})"
        return f"{name} ({reg_name(inst.srcs[0])})"
    # Operate formats.
    if name == "LDI":
        return f"LDI {reg_name(inst.dest)}, {inst.imm}"
    if name in ("MOV", "MOVF"):
        return f"{name} {reg_name(inst.dest)}, {reg_name(inst.srcs[0])}"
    if len(inst.srcs) == 1:
        return f"{name} {reg_name(inst.dest)}, {reg_name(inst.srcs[0])}, #{inst.imm}"
    return (
        f"{name} {reg_name(inst.dest)}, "
        f"{reg_name(inst.srcs[0])}, {reg_name(inst.srcs[1])}"
    )


def disassemble_program(program) -> str:
    """Render a whole :class:`~repro.isa.assembler.Program` as text."""
    index_to_label = {v: k for k, v in program.labels.items()}
    lines = []
    for index, inst in enumerate(program.instructions):
        if index in index_to_label:
            lines.append(f"{index_to_label[index]}:")
        label = index_to_label.get(inst.target) if inst.target is not None else None
        lines.append("    " + disassemble(inst, label=label))
    return "\n".join(lines)
