"""Static instruction representation for HPRISC.

An :class:`Instruction` is the decoded, assembler-produced form of one static
instruction.  It knows its operand fields and exposes the static
classifications the paper's Section 2.3 characterization needs:

* whether the *encoding* has a two-source format (Figure 2);
* how many unique, non-zero-register sources it has (Figure 3);
* whether it is an eliminated 2-source-format nop.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.opcodes import Opcode, OpClass
from repro.isa.registers import is_zero_reg, reg_name


@dataclass(frozen=True)
class Instruction:
    """One decoded static HPRISC instruction.

    Attributes:
        opcode: the static opcode description.
        dest: destination architectural register, or ``None``.
        srcs: tuple of source architectural registers as they appear in the
            encoding (zero registers included), length 0..2.
        imm: immediate value for operate-with-immediate, load/store
            displacement, or load-immediate value.
        target: branch/call target as an instruction index, or ``None``.
    """

    opcode: Opcode
    dest: int | None = None
    srcs: tuple[int, ...] = field(default=())
    imm: int = 0
    target: int | None = None

    def __post_init__(self):
        if len(self.srcs) > 2:
            raise ValueError("HPRISC instructions have at most 2 sources")

    # ------------------------------------------------------------------
    # Classification helpers used throughout the characterization code.
    # ------------------------------------------------------------------
    @property
    def op_class(self) -> OpClass:
        return self.opcode.op_class

    @property
    def is_load(self) -> bool:
        return self.op_class is OpClass.LOAD

    @property
    def is_store(self) -> bool:
        return self.op_class is OpClass.STORE

    @property
    def is_branch(self) -> bool:
        return self.op_class is OpClass.BRANCH

    @property
    def is_control(self) -> bool:
        return self.op_class.is_control

    @property
    def is_halt(self) -> bool:
        return self.op_class is OpClass.HALT

    @property
    def is_two_source_format(self) -> bool:
        """True if the encoding carries two register source fields.

        This is the Figure 2 notion: a property of the instruction format,
        independent of which registers the fields actually name.
        """
        return len(self.srcs) == 2

    @property
    def is_eliminated_nop(self) -> bool:
        """True for nops the decoder drops without execution.

        Covers explicit ``NOP``/``NOP2`` and operate instructions whose
        destination is a zero register (the Alpha idiom for alignment nops).
        """
        if self.op_class is OpClass.NOP:
            return True
        return self.dest is not None and is_zero_reg(self.dest)

    @property
    def unique_nonzero_sources(self) -> tuple[int, ...]:
        """Source registers that create true data dependences.

        Zero registers never create dependences and duplicated registers
        count once, per the paper's Figure 3 breakdown.
        """
        seen: list[int] = []
        for reg in self.srcs:
            if not is_zero_reg(reg) and reg not in seen:
                seen.append(reg)
        return tuple(seen)

    @property
    def is_two_source(self) -> bool:
        """True for the paper's *2-source instructions*.

        Two unique, non-zero-register sources in a non-store, non-eliminated
        instruction.  Stores are excluded because they are handled as an
        address generation plus a data move (Section 2.3).
        """
        if self.is_store or self.is_eliminated_nop:
            return False
        return len(self.unique_nonzero_sources) == 2

    @property
    def writes_register(self) -> bool:
        """True if the instruction produces an architectural result."""
        return self.dest is not None and not is_zero_reg(self.dest)

    # ------------------------------------------------------------------
    def __str__(self) -> str:
        from repro.isa.disassembler import disassemble

        return disassemble(self)

    def describe(self) -> str:
        """Verbose, unambiguous rendering for debugging."""
        parts = [self.opcode.name]
        if self.dest is not None:
            parts.append(f"dest={reg_name(self.dest)}")
        if self.srcs:
            parts.append("srcs=" + ",".join(reg_name(s) for s in self.srcs))
        if self.imm:
            parts.append(f"imm={self.imm}")
        if self.target is not None:
            parts.append(f"target={self.target}")
        return " ".join(parts)
