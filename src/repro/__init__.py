"""repro — a reproduction of *Half-Price Architecture* (Kim & Lipasti, ISCA 2003).

The package implements, from scratch:

* a cycle-level out-of-order superscalar simulator with speculative
  scheduling and configurable replay (the SimpleScalar-derived substrate
  the paper evaluates on);
* the paper's two techniques — **sequential wakeup** and **sequential
  register access** — plus the **tag elimination** baseline it compares
  against;
* an executable Alpha-flavoured mini-ISA (assembler, emulator) and
  calibrated synthetic clones of the SPEC CINT2000 benchmarks;
* analytic circuit timing models reproducing the paper's wakeup-delay and
  register-file access-time claims;
* an experiment harness that regenerates every table and figure.

Quickstart::

    from repro import FOUR_WIDE, SchedulerModel, simulate
    from repro.workloads import SyntheticWorkload, get_profile

    workload = SyntheticWorkload(get_profile("gcc"))
    base = simulate(workload, FOUR_WIDE)
    seq = simulate(workload, FOUR_WIDE.with_techniques(
        scheduler=SchedulerModel.SEQ_WAKEUP))
    print(base.ipc, seq.ipc)
"""

from repro.errors import (
    AssemblyError,
    ConfigurationError,
    EmulationError,
    ReproError,
    SimulationError,
)
from repro.pipeline.config import (
    EIGHT_WIDE,
    FOUR_WIDE,
    MachineConfig,
    RecoveryModel,
    RegFileModel,
    SchedulerModel,
)
from repro.pipeline.processor import Processor, SimulationResult, simulate

__version__ = "1.0.0"

__all__ = [
    "AssemblyError",
    "ConfigurationError",
    "EmulationError",
    "ReproError",
    "SimulationError",
    "EIGHT_WIDE",
    "FOUR_WIDE",
    "MachineConfig",
    "RecoveryModel",
    "RegFileModel",
    "SchedulerModel",
    "Processor",
    "SimulationResult",
    "simulate",
    "__version__",
]
