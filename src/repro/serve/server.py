"""Asyncio HTTP job server: simulation-as-a-service.

Stdlib-only (``asyncio.start_server`` plus a minimal HTTP/1.1 framing
layer).  The endpoint surface (see docs/SERVING.md for the full API
reference):

* ``POST /v1/jobs``      — submit one spec or ``{"jobs": [...]}``; 202
  with per-job ids, or 429 + ``Retry-After`` when the queue is full;
* ``GET /v1/jobs``       — list jobs (``?status=`` filter);
* ``GET /v1/jobs/{id}``  — status/result; ``?wait=SECONDS`` long-polls;
* ``DELETE /v1/jobs/{id}`` — cancel a job that has not started;
* ``GET /metrics``       — the server's MetricsRegistry plus derived
  queue depth and p50/p90/p99 job latency;
* ``GET /healthz``       — liveness.

Concurrency model: one asyncio task per connection, a bounded priority
queue of *primary* jobs, and N worker tasks that run simulations in
threads (``asyncio.to_thread``) through the shared
:class:`~repro.serve.executor.JobExecutor`.  Submissions whose
fingerprint matches an active job coalesce onto it (singleflight) and
never occupy queue capacity.  ``SIGTERM``/``SIGINT`` trigger a graceful
drain: in-flight jobs finish, queued jobs are persisted to the spool
journal, and a restarted server resumes them with their original ids.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import signal
import threading
import time
from pathlib import Path
from urllib.parse import parse_qs, urlsplit

from repro.obs.registry import MetricsRegistry
from repro.serve.executor import JobExecutor
from repro.serve.jobs import Job, JobTable, SpoolJournal
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    QUEUED,
    ProtocolError,
    parse_batch_with_ids,
)

#: Default bind and capacity knobs (overridable per server).
DEFAULT_PORT = 8765
DEFAULT_WORKERS = 2
DEFAULT_QUEUE_SIZE = 256


def _default_batch() -> int:
    """Max queued jobs one worker drains into a single batched execution."""
    from repro.analysis.parallel import env_int

    return max(1, env_int("REPRO_POOL_BATCH", 8))

#: Long-poll waits are capped so a drain is never held hostage.
MAX_LONGPOLL_S = 30.0
_LONGPOLL_SLICE_S = 0.25

_JSON_HEADERS = "Content-Type: application/json\r\n"

#: Queue entries: (lane, -priority, sequence, job).  The shutdown
#: sentinel rides lane -1, ahead of every real job, so draining workers
#: stop immediately and queued work persists instead of executing.
_SENTINEL = (-1, 0, -1, None)


class _HttpError(Exception):
    """Internal: mapped to an HTTP error response."""

    def __init__(
        self,
        status: int,
        message: str,
        headers: dict | None = None,
        payload: dict | None = None,
    ):
        super().__init__(message)
        self.status = status
        self.headers = headers or {}
        #: extra fields merged into the JSON error body (e.g. the id
        #: watermark on 404s, so clients can classify missing jobs).
        self.payload = payload or {}


_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


def _encode_response(status: int, payload: dict, extra_headers: dict | None = None) -> bytes:
    body = json.dumps(payload, sort_keys=True).encode("utf-8") + b"\n"
    lines = [
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n",
        _JSON_HEADERS,
        f"Content-Length: {len(body)}\r\n",
        "Connection: close\r\n",
    ]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}\r\n")
    lines.append("\r\n")
    return "".join(lines).encode("latin-1") + body


async def _read_request(reader: asyncio.StreamReader):
    """Parse one HTTP/1.1 request: (method, path, query, body-bytes)."""
    request_line = await reader.readline()
    if not request_line:
        return None
    try:
        method, target, _version = request_line.decode("latin-1").split()
    except ValueError:
        raise _HttpError(400, "malformed request line") from None
    headers: dict[str, str] = {}
    while True:
        raw = await reader.readline()
        if raw in (b"\r\n", b"\n", b""):
            break
        name, _, value = raw.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    try:
        length = int(headers.get("content-length", "0") or "0")
    except ValueError:
        raise _HttpError(400, "bad Content-Length") from None
    if length < 0 or length > 64 * 1024 * 1024:
        raise _HttpError(400, "unreasonable Content-Length")
    body = await reader.readexactly(length) if length else b""
    split = urlsplit(target)
    query = {key: values[-1] for key, values in parse_qs(split.query).items()}
    return method.upper(), split.path.rstrip("/") or "/", query, body


class ServeServer:
    """The job server: HTTP frontend, coalescing queue, worker pool."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        workers: int = DEFAULT_WORKERS,
        queue_size: int = DEFAULT_QUEUE_SIZE,
        spool: Path | str | None = None,
        executor: JobExecutor | None = None,
        registry: MetricsRegistry | None = None,
        name: str | None = None,
        batch: int | None = None,
    ):
        self.host = host
        self.port = port
        #: worker identity, reported on /healthz (cluster diagnostics)
        self.name = name
        self.workers = workers
        self.queue_size = queue_size
        #: batched dispatch: a worker that wakes up drains up to this many
        #: queued jobs and executes them as one batch (REPRO_POOL_BATCH).
        self.batch = batch if batch is not None else _default_batch()
        self.executor = executor if executor is not None else JobExecutor()
        self.registry = registry if registry is not None else MetricsRegistry()
        self.table = JobTable()
        self.journal = SpoolJournal(spool) if spool is not None else None
        self._queue: asyncio.PriorityQueue = asyncio.PriorityQueue()
        self._queued_primaries = 0
        self._sequence = 0
        self._draining = False
        self._drained = asyncio.Event()
        self._server: asyncio.base_events.Server | None = None
        self._worker_tasks: list[asyncio.Task] = []
        self._started_at = time.time()
        self.recovered = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Recover the spool, bind the socket, start the worker pool."""
        self._recover()
        self._server = await asyncio.start_server(self._handle_connection, self.host, self.port)
        sockets = self._server.sockets or ()
        if sockets:
            self.port = sockets[0].getsockname()[1]
        for index in range(self.workers):
            self._worker_tasks.append(asyncio.create_task(self._worker(), name=f"worker-{index}"))

    def _recover(self) -> None:
        if self.journal is None:
            return
        for job_id, spec in self.journal.recover():
            job, coalesced = self.table.submit(spec, job_id=job_id)
            if not coalesced:
                self._enqueue(job)
            self.recovered += 1
        # Honour the journal's id watermark so ids of jobs that completed
        # before the previous shutdown are never reissued.
        self.table.reserve_next_id(self.journal.next_id)
        if self.recovered:
            self.registry.counter("serve.recovered").inc(self.recovered)
        # Drop stale done-markers (and any torn tail) from the journal.
        self.journal.compact(self.table.pending(), next_id=self.table.next_id)

    async def drain(self) -> None:
        """Graceful shutdown: finish in-flight work, persist the queue."""
        if self._draining:
            await self._drained.wait()
            return
        self._draining = True
        # Sentinels outrank every job, so blocked workers stop now and no
        # queued job starts; in-flight executions run to completion.
        for _ in self._worker_tasks:
            self._queue.put_nowait(_SENTINEL)
        if self._worker_tasks:
            await asyncio.gather(*self._worker_tasks, return_exceptions=True)
        if self.journal is not None:
            self.journal.compact(self.table.pending(), next_id=self.table.next_id)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self._drained.set()

    async def abort(self) -> None:
        """Hard stop (simulated crash): no drain, no journal compaction."""
        self._draining = True
        for task in self._worker_tasks:
            task.cancel()
        await asyncio.gather(*self._worker_tasks, return_exceptions=True)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self._drained.set()

    async def run_until_signalled(self) -> None:
        """Serve until SIGTERM/SIGINT, then drain (CLI entry point)."""
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        for signum in (signal.SIGTERM, signal.SIGINT):
            with contextlib.suppress(NotImplementedError, RuntimeError):
                loop.add_signal_handler(signum, stop.set)
        await stop.wait()
        await self.drain()

    # ------------------------------------------------------------------
    # queue + workers
    # ------------------------------------------------------------------
    def _enqueue(self, job: Job) -> None:
        self._sequence += 1
        self._queue.put_nowait((0, -job.spec.priority, self._sequence, job))
        self._queued_primaries += 1

    def queue_depth(self) -> int:
        """Primaries accepted but not yet started."""
        return self._queued_primaries

    def _retry_after(self) -> int:
        """Backpressure hint: expected seconds until queue space frees."""
        timer = self.registry.get("serve.exec_seconds")
        mean = 1.0
        if timer is not None and timer.calls:
            mean = max(0.05, timer.seconds / timer.calls)
        workers = max(1, self.workers)
        estimate = self._queued_primaries * mean / workers
        return max(1, min(60, int(estimate + 0.999)))

    async def _worker(self) -> None:
        while True:
            lane, _priority, _sequence, job = await self._queue.get()
            if lane < 0:  # shutdown sentinel
                return
            self._queued_primaries -= 1
            batch = [] if job.terminal else [job]
            # Batched dispatch: drain whatever else is already queued (up
            # to the batch cap) so one execution — and one warm-pool
            # fan-out — amortizes over every job that was waiting.
            while len(batch) < self.batch:
                try:
                    extra = self._queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if extra[0] < 0:
                    # A drain sentinel outranks jobs, so it can only show
                    # up here mid-drain: leave it for the next loop turn.
                    self._queue.put_nowait(extra)
                    break
                self._queued_primaries -= 1
                if not extra[3].terminal:
                    batch.append(extra[3])
            if batch:
                await self._execute_batch(batch)

    async def _execute_batch(self, jobs: list[Job]) -> None:
        for job in jobs:
            self.table.mark_running(job)
        started = time.perf_counter()
        try:
            outcomes = await asyncio.to_thread(
                self.executor.execute_batch, [job.spec for job in jobs]
            )
        except Exception as error:  # noqa: BLE001 - jobs must never kill a worker
            # execute_batch isolates per-spec failures; reaching this
            # means the batch machinery itself broke — fail every member.
            outcomes = [error] * len(jobs)
        elapsed = time.perf_counter() - started
        # One timer sample per job keeps the Retry-After estimate (mean
        # seconds per job) honest under batching.
        self.registry.timer("serve.exec_seconds").add(elapsed, calls=len(jobs))
        self.registry.histogram("serve.batch_size").observe(len(jobs))
        if len(jobs) > 1:
            self.registry.counter("serve.batched_jobs").inc(len(jobs))
        for job, outcome in zip(jobs, outcomes):
            if isinstance(outcome, Exception):
                settled = self.table.finish(
                    job, error=f"{type(outcome).__name__}: {outcome}"
                )
                self.registry.counter("serve.failed").inc(len(settled))
            else:
                settled = self.table.finish(job, result=outcome)
                self.registry.counter("serve.completed").inc(len(settled))
            for done_job in settled:
                latency_ms = int((done_job.finished_at - done_job.submitted_at) * 1000)
                self.registry.histogram("serve.job_latency_ms").observe(latency_ms)
                if self.journal is not None:
                    self.journal.record_done(done_job)

    # ------------------------------------------------------------------
    # HTTP layer
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        try:
            try:
                request = await _read_request(reader)
                if request is None:
                    return
                method, path, query, body = request
                self.registry.counter("serve.http_requests").inc()
                response = await self._route(method, path, query, body)
            except _HttpError as error:
                response = _encode_response(
                    error.status, {"error": str(error), **error.payload}, error.headers
                )
            except ProtocolError as error:
                response = _encode_response(400, {"error": str(error)})
            except (asyncio.IncompleteReadError, ConnectionError):
                return
            except Exception as error:  # noqa: BLE001 - never kill the acceptor
                self.registry.counter("serve.http_errors").inc()
                response = _encode_response(
                    500, {"error": f"{type(error).__name__}: {error}"}
                )
            writer.write(response)
            await writer.drain()
        except (ConnectionError, BrokenPipeError):
            pass
        finally:
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _route(self, method: str, path: str, query: dict, body: bytes) -> bytes:
        if path == "/healthz" and method == "GET":
            return _encode_response(
                200,
                {
                    "ok": True,
                    "draining": self._draining,
                    "queue_depth": self._queued_primaries,
                    "name": self.name,
                    "protocol_version": PROTOCOL_VERSION,
                },
            )
        if path == "/metrics" and method == "GET":
            return _encode_response(200, self._metrics_document())
        if path == "/v1/jobs":
            if method == "POST":
                return self._post_jobs(body)
            if method == "GET":
                return self._list_jobs(query)
            raise _HttpError(405, f"{method} not allowed on {path}")
        if path.startswith("/v1/jobs/"):
            job_id = path[len("/v1/jobs/"):]
            if method == "GET":
                return await self._get_job(job_id, query)
            if method == "DELETE":
                return self._cancel_job(job_id)
            raise _HttpError(405, f"{method} not allowed on {path}")
        raise _HttpError(404, f"no route for {method} {path}")

    def _post_jobs(self, body: bytes) -> bytes:
        if self._draining:
            raise _HttpError(503, "server is draining", {"Retry-After": "5"})
        try:
            payload = json.loads(body.decode("utf-8") or "null")
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise _HttpError(400, f"request body is not valid JSON: {error}") from None
        specs, assigned_ids = parse_batch_with_ids(payload)
        # Atomic admission: count how many specs are *new work* and check
        # capacity before accepting anything, so a rejected batch leaves
        # no partial state for the client's retry to collide with.
        new_fingerprints: set[str] = set()
        new_work = 0
        for spec in specs:
            digest = spec.fingerprint()
            if digest in new_fingerprints or self.table.active_primary(digest) is not None:
                continue
            new_fingerprints.add(digest)
            new_work += 1
        if self._queued_primaries + new_work > self.queue_size:
            self.registry.counter("serve.rejected_429").inc()
            raise _HttpError(
                429,
                f"queue full ({self._queued_primaries}/{self.queue_size} queued)",
                {"Retry-After": str(self._retry_after())},
            )
        accepted = []
        for index, spec in enumerate(specs):
            job_id = assigned_ids[index] if assigned_ids is not None else None
            if job_id is not None and job_id in self.table.jobs:
                # Idempotent re-dispatch: the router retried a submission
                # the worker already holds — acknowledge the existing job
                # instead of forking its identity.
                job = self.table.jobs[job_id]
                accepted.append(
                    {
                        "id": job.id,
                        "status": job.status,
                        "fingerprint": job.fingerprint,
                        "coalesced": job.coalesced_into is not None,
                        "coalesced_into": job.coalesced_into,
                    }
                )
                continue
            job, coalesced = self.table.submit(spec, job_id=job_id)
            if self.journal is not None:
                self.journal.record_submit(job)
            if coalesced:
                self.registry.counter("serve.coalesce_hits").inc()
            else:
                self._enqueue(job)
            self.registry.counter("serve.submitted").inc()
            accepted.append(
                {
                    "id": job.id,
                    "status": job.status,
                    "fingerprint": job.fingerprint,
                    "coalesced": coalesced,
                    "coalesced_into": job.coalesced_into,
                }
            )
        return _encode_response(202, {"protocol_version": PROTOCOL_VERSION, "jobs": accepted})

    def _list_jobs(self, query: dict) -> bytes:
        status = query.get("status")
        jobs = [
            job.public(include_result=False)
            for job in sorted(self.table.jobs.values(), key=lambda j: j.id)
            if status is None or job.status == status
        ]
        return _encode_response(200, {"jobs": jobs})

    async def _get_job(self, job_id: str, query: dict) -> bytes:
        job = self.table.jobs.get(job_id)
        if job is None:
            # The id watermark lets clients tell "completed before a
            # restart and compacted away" from "never issued".
            raise _HttpError(
                404,
                f"no such job {job_id!r}",
                payload={"next_id": self.table.next_id},
            )
        wait = 0.0
        if "wait" in query:
            try:
                wait = min(MAX_LONGPOLL_S, max(0.0, float(query["wait"])))
            except ValueError:
                raise _HttpError(400, "wait must be a number of seconds") from None
        deadline = time.monotonic() + wait
        while not job.terminal and time.monotonic() < deadline and not self._draining:
            remaining = deadline - time.monotonic()
            with contextlib.suppress(asyncio.TimeoutError):
                await asyncio.wait_for(
                    job.done_event.wait(), timeout=min(_LONGPOLL_SLICE_S, remaining)
                )
        return _encode_response(200, job.public())

    def _cancel_job(self, job_id: str) -> bytes:
        job = self.table.jobs.get(job_id)
        if job is None:
            raise _HttpError(
                404,
                f"no such job {job_id!r}",
                payload={"next_id": self.table.next_id},
            )
        if job.terminal:
            return _encode_response(200, job.public(include_result=False))
        if job.status != QUEUED:
            raise _HttpError(409, f"job {job_id} is {job.status}; only queued jobs cancel")
        settled = self.table.cancel(job)
        self.registry.counter("serve.cancelled").inc(len(settled))
        if self.journal is not None:
            for cancelled in settled:
                self.journal.record_done(cancelled)
        return _encode_response(200, job.public(include_result=False))

    # ------------------------------------------------------------------
    def _metrics_document(self) -> dict:
        histogram = self.registry.get("serve.job_latency_ms")
        quantiles = {"p50": None, "p90": None, "p99": None}
        if histogram is not None and histogram.total:
            points = sorted(histogram.buckets.items())
            total = histogram.total
            for label, fraction in (("p50", 0.50), ("p90", 0.90), ("p99", 0.99)):
                threshold = fraction * total
                seen = 0
                for bucket, count in points:
                    seen += count
                    if seen >= threshold:
                        quantiles[label] = bucket
                        break
        self.registry.counter("serve.queue_depth").set(self._queued_primaries)
        self.registry.counter("serve.simulated").set(self.executor.simulated())
        metrics = self.registry.as_dict()
        # Surface the warm worker pool's counters (pool.* names) next to
        # the server's own — but never create the pool just to report.
        from repro.analysis.pool import maybe_pool

        pool = maybe_pool()
        if pool is not None:
            metrics.update(pool.registry.as_dict())
        return {
            "protocol_version": PROTOCOL_VERSION,
            "serve": {
                "draining": self._draining,
                "queue_depth": self._queued_primaries,
                "queue_size": self.queue_size,
                "workers": self.workers,
                "batch": self.batch,
                "jobs_total": len(self.table.jobs),
                "uptime_s": round(time.time() - self._started_at, 3),
                "latency_ms": quantiles,
            },
            "metrics": metrics,
        }


# ----------------------------------------------------------------------
# Embedding helpers
# ----------------------------------------------------------------------
async def _serve_main(server: ServeServer, announce=None) -> None:
    await server.start()
    if announce is not None:
        announce(server)
    await server.run_until_signalled()


def run_server(server: ServeServer, announce=None) -> int:
    """Blocking entry point used by ``repro serve``; returns exit code."""
    asyncio.run(_serve_main(server, announce))
    return 0


class BackgroundServer:
    """A ServeServer on its own thread + event loop (tests, fixtures).

    ``start()`` blocks until the socket is bound and exposes ``port``;
    ``stop(graceful=True)`` drains (persisting the queue), while
    ``stop(graceful=False)`` aborts without compaction — a simulated
    crash for persistence tests.
    """

    def __init__(self, **server_kwargs):
        self._kwargs = server_kwargs
        self.server: ServeServer | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._stop_requested: asyncio.Event | None = None
        self._graceful = True
        self._startup_error: BaseException | None = None

    @property
    def port(self) -> int:
        assert self.server is not None
        return self.server.port

    @property
    def base_url(self) -> str:
        assert self.server is not None
        return f"http://{self.server.host}:{self.server.port}"

    async def _main(self) -> None:
        self._stop_requested = asyncio.Event()
        self.server = ServeServer(**self._kwargs)
        try:
            await self.server.start()
        except BaseException as error:
            self._startup_error = error
            self._ready.set()
            raise
        self._ready.set()
        await self._stop_requested.wait()
        if self._graceful:
            await self.server.drain()
        else:
            await self.server.abort()

    def _run(self) -> None:
        self._loop = asyncio.new_event_loop()
        try:
            self._loop.run_until_complete(self._main())
        except BaseException:
            self._ready.set()
        finally:
            self._loop.close()

    def start(self) -> "BackgroundServer":
        self._thread = threading.Thread(target=self._run, name="serve-bg", daemon=True)
        self._thread.start()
        self._ready.wait(timeout=30)
        if self._startup_error is not None:
            raise self._startup_error
        if self.server is None or self._loop is None:
            raise RuntimeError("background server failed to start")
        return self

    def stop(self, graceful: bool = True) -> None:
        if self._loop is None or self._thread is None or self._stop_requested is None:
            return
        self._graceful = graceful
        # Idempotent: a second stop after the loop already closed
        # (e.g. fixture teardown after a simulated crash) is a no-op.
        with contextlib.suppress(RuntimeError):
            self._loop.call_soon_threadsafe(self._stop_requested.set)
        self._thread.join(timeout=60)

    def __enter__(self) -> "BackgroundServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop(graceful=True)
