"""Simulation-as-a-service: async HTTP job server + retrying client SDK.

The serving layer turns the repository's analysis stack into an
inference-style service (docs/SERVING.md):

* :mod:`repro.serve.protocol` — wire-level job specs, validated against
  :mod:`repro.pipeline.config` and fingerprinted with the result-cache
  digest (the coalescing/idempotency key);
* :mod:`repro.serve.jobs` — the job table with **singleflight
  coalescing** (concurrent jobs sharing a fingerprint simulate once and
  fan the result out) and the crash-safe spool journal that lets a
  restarted server resume pending jobs;
* :mod:`repro.serve.executor` — spec execution on worker threads through
  the shared :class:`~repro.analysis.runner.ExperimentRunner` machinery
  (memo, disk cache, process-local singleflight);
* :mod:`repro.serve.server` — the asyncio HTTP server: bounded priority
  queue, 429 + ``Retry-After`` backpressure, ``/metrics``, graceful
  SIGTERM drain;
* :mod:`repro.serve.client` — the client SDK: jittered-exponential
  retries, Retry-After compliance, idempotent resubmission, long-poll
  waiting.

Start a server with ``repro serve``; submit with ``repro submit`` or
:class:`~repro.serve.client.ServeClient`.
"""

from repro.serve.client import JobFailed, RetryPolicy, ServeClient, ServeError
from repro.serve.executor import JobExecutor
from repro.serve.jobs import Job, JobTable, SpoolJournal
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    RunSpec,
    VerifySpec,
    parse_batch,
    parse_spec,
)
from repro.serve.server import BackgroundServer, ServeServer, run_server

__all__ = [
    "PROTOCOL_VERSION",
    "BackgroundServer",
    "Job",
    "JobExecutor",
    "JobFailed",
    "JobTable",
    "ProtocolError",
    "RetryPolicy",
    "RunSpec",
    "ServeClient",
    "ServeError",
    "ServeServer",
    "SpoolJournal",
    "VerifySpec",
    "parse_batch",
    "parse_spec",
    "run_server",
]
