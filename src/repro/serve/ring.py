"""Consistent-hash ring: cache fingerprints -> worker names.

The cluster router places every job on a worker by hashing its cache
fingerprint onto this ring, so all submissions of one fingerprint land
on the same worker and that worker's in-process singleflight coalesces
them — cluster-wide coalescing with no cross-worker locking.

Each worker contributes ``replicas`` virtual points (SHA-256 of
``"name#i"``), which smooths the load split; a fingerprint maps to the
first point clockwise from its own hash.  Adding or removing one worker
moves only the keys owned by that worker's points (~1/N of the space),
which is what makes ring resizes on worker death or drain cheap: the
untouched majority of fingerprints keep their home worker and their
coalescing history.
"""

from __future__ import annotations

import bisect
import hashlib

#: Virtual points per node.  64 keeps the max/min load ratio of a
#: 3-node ring comfortably under 1.5x at negligible memory cost.
DEFAULT_REPLICAS = 64


def _point(label: str) -> int:
    """A node/key position on the ring: the top 8 bytes of SHA-256."""
    return int.from_bytes(hashlib.sha256(label.encode("utf-8")).digest()[:8], "big")


class HashRing:
    """Consistent hashing over named nodes with virtual replicas."""

    def __init__(self, nodes=(), replicas: int = DEFAULT_REPLICAS):
        self.replicas = replicas
        self._nodes: set[str] = set()
        #: parallel sorted arrays: point hash -> owning node
        self._points: list[int] = []
        self._owners: list[str] = []
        for node in nodes:
            self.add(node)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    def nodes(self) -> list[str]:
        return sorted(self._nodes)

    # ------------------------------------------------------------------
    def add(self, node: str) -> bool:
        """Add *node*; False if it was already on the ring."""
        if node in self._nodes:
            return False
        self._nodes.add(node)
        for replica in range(self.replicas):
            point = _point(f"{node}#{replica}")
            index = bisect.bisect_left(self._points, point)
            self._points.insert(index, point)
            self._owners.insert(index, node)
        return True

    def remove(self, node: str) -> bool:
        """Remove *node*; False if it was not on the ring."""
        if node not in self._nodes:
            return False
        self._nodes.discard(node)
        keep = [pair for pair in zip(self._points, self._owners) if pair[1] != node]
        self._points = [point for point, _owner in keep]
        self._owners = [owner for _point, owner in keep]
        return True

    # ------------------------------------------------------------------
    def node(self, key: str) -> str | None:
        """The node owning *key* (first point clockwise), or None if empty."""
        if not self._points:
            return None
        index = bisect.bisect_right(self._points, _point(key))
        if index == len(self._points):
            index = 0  # wrap past the top of the ring
        return self._owners[index]
