"""Job execution for the serving layer.

Workers hand validated specs to one shared :class:`JobExecutor`, which
routes them onto the existing analysis machinery:

* ``run`` jobs go through :class:`~repro.analysis.runner.ExperimentRunner`
  — one runner per (insts, warmup) pair, all sharing a single on-disk
  :class:`~repro.analysis.cache.ResultCache` — so served results ride the
  same memo → disk-cache → compute chain as the offline CLI, and the
  runner's process-local singleflight keeps concurrent worker threads
  from duplicating a simulation the serve-level coalescer missed.
  The result payload is the **versioned stats export**
  (:func:`repro.obs.export.build_stats_export`) — byte-identical to what
  ``repro export-stats`` writes for the same inputs.
* ``verify`` jobs replay an HPRISC program through the differential
  verification stack (:func:`repro.verify.check_source`) across the
  requested configuration matrix.
* ``trace`` jobs replay a binary tracefile (:mod:`repro.trace`) — full
  runs produce the same versioned stats export as ``run`` jobs; sampled
  runs produce the SimPoint-style sampling report.  Decoded feeds are
  memoized per content hash, so many jobs against one trace decode it
  once per worker process.
"""

from __future__ import annotations

import threading

from repro.analysis.cache import ResultCache
from repro.analysis.runner import ExperimentRunner
from repro.fastsim import apply_backend
from repro.obs.export import build_stats_export
from repro.serve.protocol import JobSpec, RunSpec, TraceSpec, VerifySpec


class JobExecutor:
    """Executes job specs; safe to call from multiple worker threads."""

    def __init__(self, cache: ResultCache | None | bool = True, jobs: int | None = None):
        if cache is True:
            self.cache: ResultCache | None = ResultCache.from_env()
        elif cache is False:
            self.cache = None
        else:
            self.cache = cache
        #: worker processes each runner may use for bulk work — batched
        #: executions prefetch their cache misses through the warm pool.
        #: None resolves via REPRO_JOBS / CPU count at dispatch time.
        self.jobs = jobs
        self._runners: dict[tuple[int, int], ExperimentRunner] = {}
        #: decoded trace feeds, memoized by content hash
        self._feeds: dict[str, object] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def runner_for(self, insts: int, warmup: int) -> ExperimentRunner:
        """The shared runner serving one (insts, warmup) run-length pair."""
        key = (insts, warmup)
        with self._lock:
            runner = self._runners.get(key)
            if runner is None:
                runner = ExperimentRunner(
                    insts=insts, warmup=warmup, jobs=self.jobs, cache=self.cache
                )
                self._runners[key] = runner
        return runner

    def simulated(self) -> int:
        """Total simulations actually executed (not served from a cache)."""
        with self._lock:
            runners = list(self._runners.values())
        total = 0
        for runner in runners:
            counter = runner.metrics.get("runner.simulated")
            total += counter.value if counter is not None else 0
        return total

    # ------------------------------------------------------------------
    def execute(self, spec: JobSpec) -> dict:
        """Run one spec to completion; returns the result document."""
        if isinstance(spec, RunSpec):
            return self._execute_run(spec)
        if isinstance(spec, VerifySpec):
            return self._execute_verify(spec)
        if isinstance(spec, TraceSpec):
            return self._execute_trace(spec)
        raise TypeError(f"unknown spec type {type(spec).__name__}")  # pragma: no cover

    def execute_batch(self, specs: list[JobSpec]) -> list[dict | Exception]:
        """Run a batch of specs, isolating failures per spec.

        Returns one entry per spec, in order: the result document on
        success, or the exception that spec raised (so a server worker
        can settle each job individually — one bad spec never poisons
        its batchmates).

        Run-kind specs sharing a run-length pair are bulk-resolved first
        via :meth:`~repro.analysis.runner.ExperimentRunner.prefetch`, so
        their cache misses fan out together over the warm worker pool
        and the per-spec ``execute`` calls below are pure memo lookups
        plus document builds.  Cache hits never reach the pool.
        """
        groups: dict[tuple[int, int], list[RunSpec]] = {}
        for spec in specs:
            if isinstance(spec, RunSpec):
                groups.setdefault((spec.insts, spec.warmup), []).append(spec)
        for (insts, warmup), members in groups.items():
            requests = []
            for spec in members:
                try:
                    requests.append(
                        (spec.benchmark, apply_backend(spec.config()), spec.seed, spec.shadow)
                    )
                except Exception:  # noqa: BLE001 - surfaced per-spec below
                    pass
            try:
                self.runner_for(insts, warmup).prefetch(requests)
            except Exception:  # noqa: BLE001 - surfaced per-spec below
                pass
        outcomes: list[dict | Exception] = []
        for spec in specs:
            try:
                outcomes.append(self.execute(spec))
            except Exception as error:  # noqa: BLE001 - settled per job
                outcomes.append(error)
        return outcomes

    def _execute_run(self, spec: RunSpec) -> dict:
        runner = self.runner_for(spec.insts, spec.warmup)
        # Materialized here (not just inside the runner) so the exported
        # document's config/fingerprint match the run when a server-side
        # REPRO_BACKEND overrides the spec's choice.
        config = apply_backend(spec.config())
        result = runner.result(spec.benchmark, config, shadow=spec.shadow, seed=spec.seed)
        document = build_stats_export(
            result,
            config,
            benchmark=spec.benchmark,
            seed=spec.seed,
            insts=spec.insts,
            warmup=spec.warmup,
            shadow_sizes=spec.shadow_sizes,
        )
        return {"kind": "run", "stats": document}

    def _trace_feed(self, spec: TraceSpec):
        """The decoded feed for a trace spec, memoized by content hash."""
        # Deferred: the trace stack is needed only by trace jobs.
        from repro.trace import TraceFormatError, load_corpus_feed

        with self._lock:
            feed = self._feeds.get(spec.content_hash)
        if feed is not None:
            return feed
        feed = load_corpus_feed(spec.trace)
        if feed.content_hash != spec.content_hash:
            raise TraceFormatError(
                f"trace {spec.trace!r} has content hash "
                f"{feed.content_hash[:12]}…, but the job was submitted for "
                f"{spec.content_hash[:12]}… (stale reference?)"
            )
        with self._lock:
            return self._feeds.setdefault(spec.content_hash, feed)

    def _execute_trace(self, spec: TraceSpec) -> dict:
        from repro.trace import run_full, run_sampled, trace_token
        from repro.trace.run import TRACE_SEED

        feed = self._trace_feed(spec)
        # Materialized for the same reason as run jobs: the exported
        # fingerprint must match what actually executed under a
        # server-side REPRO_BACKEND override.
        config = apply_backend(spec.config())
        if spec.sampled:
            report = run_sampled(
                feed,
                config,
                interval=spec.interval,
                k=spec.k,
                warmup=spec.sample_warmup,
                dims=spec.dims,
                seed=spec.sample_seed,
                warm_caches=spec.warm_caches,
                shadow_sizes=spec.shadow_sizes,
                cache=self.cache,
            )
            return {"kind": "trace", "report": report}
        result = run_full(
            feed,
            config,
            insts=spec.insts,
            warmup=spec.warmup,
            shadow_sizes=spec.shadow_sizes,
            cache=self.cache,
        )
        document = build_stats_export(
            result,
            config,
            benchmark=trace_token(spec.content_hash),
            seed=TRACE_SEED,
            insts=spec.insts if spec.insts is not None else 0,
            warmup=spec.warmup,
            shadow_sizes=spec.shadow_sizes,
        )
        return {"kind": "trace", "stats": document}

    def _execute_verify(self, spec: VerifySpec) -> dict:
        # Deferred: the verify stack is needed only by verify jobs.
        from repro.verify import check_source, config_matrix

        configs = config_matrix(names=list(spec.configs) if spec.configs else None)
        failures = []
        for config in configs:
            failure = check_source(spec.source, config, budget=spec.budget)
            if failure is not None:
                failures.append(
                    {
                        "kind": failure.kind,
                        "config": failure.config_name,
                        "message": failure.message,
                    }
                )
        return {
            "kind": "verify",
            "ok": not failures,
            "checked": len(configs),
            "configs": [config.name for config in configs],
            "failures": failures,
        }
