"""Job bookkeeping for the serving layer: table, coalescing, persistence.

The :class:`JobTable` owns every job the server has seen.  Submission is
where **singleflight coalescing** happens: a spec whose fingerprint matches
a job that is still queued or running does not enqueue new work — it
becomes a *follower* of the active primary, and when the primary finishes
its result (or error) fans out to every follower.  Followers are free:
only primaries occupy queue capacity, so resubmitting an in-flight sweep
never trips backpressure.

The :class:`SpoolJournal` makes the queue crash-safe.  Every accepted job
appends a ``submit`` line *before* the server acknowledges it, and every
terminal transition appends a ``done`` line; recovery replays the journal
and re-enqueues the submits that never reached a terminal state.  A torn
trailing line (the crash happened mid-write) is ignored.  Graceful
shutdown compacts the journal down to exactly the pending set.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.serve.protocol import (
    CANCELLED,
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    TERMINAL_STATES,
    JobSpec,
    parse_spec,
)


@dataclass
class Job:
    """One submitted job and its lifecycle state."""

    id: str
    spec: JobSpec
    fingerprint: str
    status: str = QUEUED
    #: primary job id this submission coalesced onto (None for primaries)
    coalesced_into: str | None = None
    followers: list["Job"] = field(default_factory=list)
    submitted_at: float = field(default_factory=time.time)
    started_at: float | None = None
    finished_at: float | None = None
    result: dict | None = None
    error: str | None = None
    #: set when the job reaches a terminal state (long-poll waiters)
    done_event: asyncio.Event = field(default_factory=asyncio.Event)

    @property
    def terminal(self) -> bool:
        return self.status in TERMINAL_STATES

    def public(self, include_result: bool = True) -> dict:
        """The wire representation served by ``GET /v1/jobs/{id}``."""
        document = {
            "id": self.id,
            "kind": self.spec.kind,
            "status": self.status,
            "fingerprint": self.fingerprint,
            "coalesced_into": self.coalesced_into,
            "spec": self.spec.as_wire(),
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "error": self.error,
        }
        if include_result:
            document["result"] = self.result
        return document


class JobTable:
    """All jobs by id, plus the fingerprint index driving coalescing."""

    def __init__(self, next_id: int = 1):
        self.jobs: dict[str, Job] = {}
        self._active_by_fp: dict[str, Job] = {}
        self._next_id = next_id

    def _new_id(self) -> str:
        job_id = f"j-{self._next_id:06d}"
        self._next_id += 1
        return job_id

    @property
    def next_id(self) -> int:
        """The numeric id the next submission will receive."""
        return self._next_id

    def reserve_next_id(self, next_id: int) -> None:
        """Keep the id counter at or beyond *next_id* (journal watermark)."""
        self._next_id = max(self._next_id, next_id)

    def reserve_past_id(self, job_id: str) -> None:
        """Keep the id counter ahead of a recovered job's id."""
        try:
            numeric = int(job_id.split("-", 1)[1])
        except (IndexError, ValueError):
            return
        self._next_id = max(self._next_id, numeric + 1)

    # ------------------------------------------------------------------
    def submit(self, spec: JobSpec, job_id: str | None = None) -> tuple[Job, bool]:
        """Register one spec; returns ``(job, coalesced)``.

        ``coalesced`` is True when the job attached to an active primary
        instead of becoming new work; the caller only enqueues primaries.
        """
        if job_id is None:
            job_id = self._new_id()
        else:
            self.reserve_past_id(job_id)
        job = Job(id=job_id, spec=spec, fingerprint=spec.fingerprint())
        self.jobs[job.id] = job
        primary = self._active_by_fp.get(job.fingerprint)
        if primary is not None:
            job.coalesced_into = primary.id
            job.status = primary.status
            primary.followers.append(job)
            return job, True
        self._active_by_fp[job.fingerprint] = job
        return job, False

    # ------------------------------------------------------------------
    def mark_running(self, job: Job) -> None:
        job.status = RUNNING
        job.started_at = time.time()
        for follower in job.followers:
            follower.status = RUNNING
            follower.started_at = job.started_at

    def _settle(self, job: Job, status: str, result: dict | None, error: str | None) -> None:
        job.status = status
        job.finished_at = time.time()
        job.result = result
        job.error = error
        job.done_event.set()

    def finish(self, job: Job, result: dict | None = None, error: str | None = None) -> list[Job]:
        """Settle a primary and fan out to its followers.

        Returns every job settled (primary first) so the caller can journal
        their terminal transitions.
        """
        status = DONE if error is None else FAILED
        settled = [job]
        self._settle(job, status, result, error)
        for follower in job.followers:
            self._settle(follower, status, result, error)
            settled.append(follower)
        self._active_by_fp.pop(job.fingerprint, None)
        return settled

    def cancel(self, job: Job) -> list[Job]:
        """Cancel a queued primary (and its followers) or one follower."""
        if job.coalesced_into is not None:
            primary = self.jobs.get(job.coalesced_into)
            if primary is not None and job in primary.followers:
                primary.followers.remove(job)
            self._settle(job, CANCELLED, None, "cancelled")
            return [job]
        settled = [job]
        self._settle(job, CANCELLED, None, "cancelled")
        for follower in job.followers:
            self._settle(follower, CANCELLED, None, "cancelled")
            settled.append(follower)
        self._active_by_fp.pop(job.fingerprint, None)
        return settled

    # ------------------------------------------------------------------
    def pending(self) -> list[Job]:
        """Every non-terminal job, in submission (id) order."""
        return sorted(
            (job for job in self.jobs.values() if not job.terminal),
            key=lambda job: job.id,
        )

    def active_primary(self, fingerprint: str) -> Job | None:
        return self._active_by_fp.get(fingerprint)


# ----------------------------------------------------------------------
# Queue persistence
# ----------------------------------------------------------------------

JOURNAL_NAME = "journal.jsonl"


class SpoolJournal:
    """Append-only journal of job submissions and terminal transitions."""

    def __init__(self, directory: Path | str):
        self.directory = Path(directory)
        self.path = self.directory / JOURNAL_NAME
        #: highest id watermark observed by the last :meth:`recover` call;
        #: keeps restarted servers from reissuing ids of jobs whose records
        #: were dropped by compaction.
        self.next_id = 1

    def _append(self, record: dict) -> None:
        self.directory.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
            handle.flush()

    def record_submit(self, job: Job) -> None:
        self._append({"op": "submit", "id": job.id, "spec": job.spec.as_wire()})

    def record_done(self, job: Job) -> None:
        self._append({"op": "done", "id": job.id, "status": job.status})

    # ------------------------------------------------------------------
    def recover(self) -> list[tuple[str, JobSpec]]:
        """Replay the journal: submitted-but-not-settled jobs, in order.

        Tolerates a torn trailing line and skips records that no longer
        parse (e.g. a spec written by an incompatible version) rather than
        refusing to start.
        """
        if not self.path.is_file():
            return []
        submits: dict[str, JobSpec] = {}
        order: list[str] = []
        for line in self.path.read_text(encoding="utf-8").splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn write — the job was never acknowledged
            op, job_id = record.get("op"), record.get("id")
            if isinstance(job_id, str) and "-" in job_id:
                try:
                    self.next_id = max(self.next_id, int(job_id.split("-", 1)[1]) + 1)
                except ValueError:
                    pass
            if op == "watermark" and isinstance(record.get("next_id"), int):
                self.next_id = max(self.next_id, record["next_id"])
                continue
            if op == "submit" and isinstance(job_id, str):
                try:
                    spec = parse_spec(record.get("spec"))
                except Exception:
                    continue
                if job_id not in submits:
                    order.append(job_id)
                submits[job_id] = spec
            elif op == "done" and isinstance(job_id, str):
                if submits.pop(job_id, None) is not None:
                    order.remove(job_id)
        return [(job_id, submits[job_id]) for job_id in order]

    def compact(self, pending: list[Job], next_id: int | None = None) -> None:
        """Rewrite the journal to exactly the given pending jobs (atomic).

        ``next_id`` persists the id counter as a watermark so completed
        jobs' ids are never reissued after a restart.
        """
        self.directory.mkdir(parents=True, exist_ok=True)
        lines = []
        if next_id is not None and next_id > 1:
            lines.append(json.dumps({"op": "watermark", "next_id": next_id}, sort_keys=True))
        lines += [
            json.dumps({"op": "submit", "id": job.id, "spec": job.spec.as_wire()}, sort_keys=True)
            for job in pending
        ]
        temp = self.path.with_suffix(".tmp")
        temp.write_text("".join(line + "\n" for line in lines), encoding="utf-8")
        temp.replace(self.path)
