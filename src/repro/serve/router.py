"""Cluster router: fingerprint-sharded dispatch over serve workers.

The router is the single front door of a serve cluster.  It owns global
job identity (ids, coalescing, the crash-safe spool journal) and does no
simulation itself; every accepted primary job is dispatched to one of N
worker processes (plain ``repro serve --worker`` servers) and watched to
completion.  The design invariants (docs/SERVING.md, "Cluster mode"):

* **Fingerprint sharding.**  Jobs are placed by consistent-hashing their
  cache fingerprint onto the worker ring (:mod:`repro.serve.ring`), so
  every submission of one fingerprint lands on the same worker and that
  worker's in-process singleflight coalesces them.  Cluster-wide
  coalescing therefore needs no cross-worker locking at all.
* **Router-pinned ids.**  Dispatches carry the router's job id in the
  batch envelope (``"ids"``, protocol v2), so a job keeps one identity
  on the router, the worker, and the wire.
* **Job stealing.**  When a fingerprint's home worker is hotter than the
  steal watermark (queue depth from its ``/healthz``), the job routes to
  the least-loaded worker instead.  Stolen or re-dispatched jobs cannot
  duplicate completed work: workers share one content-addressed result
  store (:mod:`repro.analysis.store`), whose claims make the second
  worker wait for — or find — the first worker's published blob.
* **Worker lifecycle.**  A health monitor polls every worker's
  ``/healthz``; K consecutive failures evict it from the ring and its
  in-flight jobs re-dispatch to surviving workers.  A worker draining on
  SIGTERM advertises ``draining`` and is removed from routing while its
  in-flight jobs finish — a graceful ring resize.  Workers can also be
  added at runtime via ``POST /v1/workers/register``.
* **Durability.**  The spool journal records every accepted job before
  the 202 and every terminal transition after it; a restarted router
  re-dispatches the pending set under the original ids.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import signal
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from urllib.parse import urlsplit

from repro.analysis.parallel import env_int
from repro.obs.registry import MetricsRegistry
from repro.serve.jobs import Job, JobTable, SpoolJournal
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    QUEUED,
    ProtocolError,
    parse_batch,
)
from repro.serve.ring import HashRing
from repro.serve.server import (
    MAX_LONGPOLL_S,
    _encode_response,
    _HttpError,
    _read_request,
)

#: Router defaults (all overridable per instance).
DEFAULT_QUEUE_SIZE = 1024
DEFAULT_STEAL_WATERMARK = 8
DEFAULT_HEALTH_INTERVAL_S = 1.0
DEFAULT_HEALTH_FAILURES = 3
#: Long-poll slice a watcher asks its worker for per round trip.
WATCH_POLL_S = 10.0
_LONGPOLL_SLICE_S = 0.25


# ----------------------------------------------------------------------
# Minimal async HTTP client (stdlib asyncio streams, Connection: close)
# ----------------------------------------------------------------------
async def _worker_request(
    url: str,
    method: str,
    path: str,
    payload: dict | None = None,
    timeout: float = 10.0,
) -> tuple[int, dict]:
    """One HTTP exchange with a worker: ``(status, parsed-JSON body)``."""
    split = urlsplit(url if "//" in url else f"http://{url}")
    host, port = split.hostname or "127.0.0.1", split.port or 80

    async def _exchange() -> tuple[int, dict]:
        reader, writer = await asyncio.open_connection(host, port)
        try:
            body = b""
            head = [f"{method} {path} HTTP/1.1\r\n", f"Host: {host}\r\n"]
            if payload is not None:
                body = json.dumps(payload).encode("utf-8")
                head.append("Content-Type: application/json\r\n")
            head.append(f"Content-Length: {len(body)}\r\n")
            head.append("Connection: close\r\n\r\n")
            writer.write("".join(head).encode("latin-1") + body)
            await writer.drain()
            status_line = await reader.readline()
            parts = status_line.decode("latin-1").split(maxsplit=2)
            if len(parts) < 2 or not parts[1].isdigit():
                raise ConnectionError(f"malformed status line from {url}: {status_line!r}")
            status = int(parts[1])
            length = 0
            while True:
                raw = await reader.readline()
                if raw in (b"\r\n", b"\n", b""):
                    break
                name, _, value = raw.decode("latin-1").partition(":")
                if name.strip().lower() == "content-length":
                    length = int(value.strip() or "0")
            raw_body = await reader.readexactly(length) if length else b""
            document = json.loads(raw_body.decode("utf-8")) if raw_body else {}
            if not isinstance(document, dict):
                document = {"body": document}
            return status, document
        finally:
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    return await asyncio.wait_for(_exchange(), timeout=timeout)


@dataclass
class WorkerHandle:
    """Router-side view of one worker process."""

    url: str
    name: str | None = None
    queue_depth: int = 0
    draining: bool = False
    healthy: bool = True
    consecutive_failures: int = 0
    registered_at: float = field(default_factory=time.time)

    @property
    def routable(self) -> bool:
        return self.healthy and not self.draining

    def public(self) -> dict:
        return {
            "url": self.url,
            "name": self.name,
            "queue_depth": self.queue_depth,
            "draining": self.draining,
            "healthy": self.healthy,
            "consecutive_failures": self.consecutive_failures,
        }


class RouterServer:
    """HTTP front door that shards jobs onto serve workers by fingerprint."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: list[str] | tuple[str, ...] = (),
        spool: Path | str | None = None,
        registry: MetricsRegistry | None = None,
        queue_size: int = DEFAULT_QUEUE_SIZE,
        steal_watermark: int = DEFAULT_STEAL_WATERMARK,
        health_interval_s: float = DEFAULT_HEALTH_INTERVAL_S,
        health_failures: int = DEFAULT_HEALTH_FAILURES,
        watch_poll_s: float = WATCH_POLL_S,
    ):
        self.host = host
        self.port = port
        self.registry = registry if registry is not None else MetricsRegistry()
        self.queue_size = queue_size
        self.steal_watermark = steal_watermark
        self.health_interval_s = health_interval_s
        self.health_failures = health_failures
        self.watch_poll_s = watch_poll_s
        self.table = JobTable()
        self.journal = SpoolJournal(spool) if spool is not None else None
        self.ring = HashRing()
        self.workers: dict[str, WorkerHandle] = {}
        for url in workers:
            self._add_worker(url)
        self._pending_primaries = 0
        self._draining = False
        self._drained = asyncio.Event()
        self._server: asyncio.base_events.Server | None = None
        self._dispatchers: set[asyncio.Task] = set()
        #: batched dispatch: per-worker buffers of (job, future) waiting
        #: to ride one POST, and the workers with an active flusher.
        self._dispatch_buffers: dict[str, list] = {}
        self._flushing: set[str] = set()
        self.dispatch_batch = max(1, env_int("REPRO_POOL_BATCH", 8))
        self._health_task: asyncio.Task | None = None
        self._started_at = time.time()
        self.recovered = 0

    # ------------------------------------------------------------------
    # worker set
    # ------------------------------------------------------------------
    def _add_worker(self, url: str, name: str | None = None) -> WorkerHandle:
        url = url.rstrip("/")
        handle = self.workers.get(url)
        if handle is None:
            handle = WorkerHandle(url=url, name=name)
            self.workers[url] = handle
            self.ring.add(url)
        elif name is not None:
            handle.name = name
        return handle

    def _evict_worker(self, handle: WorkerHandle) -> None:
        if self.ring.remove(handle.url):
            handle.healthy = False
            self.registry.counter("router.worker_evictions").inc()

    def _routable(self) -> list[WorkerHandle]:
        return [w for w in self.workers.values() if w.routable and w.url in self.ring]

    def _choose_worker(self, fingerprint: str) -> tuple[WorkerHandle | None, bool]:
        """Pick the worker for *fingerprint*: ``(worker, stolen)``.

        The home worker (ring placement) wins unless it is gone, not
        routable, or hotter than the steal watermark — then the job is
        stolen by the least-loaded routable worker.
        """
        candidates = self._routable()
        if not candidates:
            return None, False
        home = self.workers.get(self.ring.node(fingerprint) or "")
        if (
            home is not None
            and home.routable
            and home.queue_depth < self.steal_watermark
        ):
            return home, False
        best = min(candidates, key=lambda w: (w.queue_depth, w.url))
        stolen = home is not None and home.routable and best.url != home.url
        return best, stolen

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        self._recover()
        self._server = await asyncio.start_server(self._handle_connection, self.host, self.port)
        sockets = self._server.sockets or ()
        if sockets:
            self.port = sockets[0].getsockname()[1]
        self._health_task = asyncio.create_task(self._health_loop(), name="router-health")

    def _recover(self) -> None:
        if self.journal is None:
            return
        for job_id, spec in self.journal.recover():
            job, coalesced = self.table.submit(spec, job_id=job_id)
            if not coalesced:
                self._start_dispatch(job)
            self.recovered += 1
        self.table.reserve_next_id(self.journal.next_id)
        if self.recovered:
            self.registry.counter("router.recovered").inc(self.recovered)
        self.journal.compact(self.table.pending(), next_id=self.table.next_id)

    async def drain(self) -> None:
        """Graceful shutdown: finish watched jobs, persist the rest."""
        if self._draining:
            await self._drained.wait()
            return
        self._draining = True
        if self._health_task is not None:
            self._health_task.cancel()
            await asyncio.gather(self._health_task, return_exceptions=True)
        if self._dispatchers:
            await asyncio.gather(*self._dispatchers, return_exceptions=True)
        if self.journal is not None:
            self.journal.compact(self.table.pending(), next_id=self.table.next_id)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self._drained.set()

    async def abort(self) -> None:
        """Hard stop (simulated crash): no compaction, no settling."""
        self._draining = True
        tasks = list(self._dispatchers)
        if self._health_task is not None:
            tasks.append(self._health_task)
        for task in tasks:
            task.cancel()
        await asyncio.gather(*tasks, return_exceptions=True)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self._drained.set()

    async def run_until_signalled(self) -> None:
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        for signum in (signal.SIGTERM, signal.SIGINT):
            with contextlib.suppress(NotImplementedError, RuntimeError):
                loop.add_signal_handler(signum, stop.set)
        await stop.wait()
        await self.drain()

    # ------------------------------------------------------------------
    # health monitoring
    # ------------------------------------------------------------------
    async def _health_loop(self) -> None:
        while True:
            await asyncio.gather(
                *(self._probe(worker) for worker in list(self.workers.values())),
                return_exceptions=True,
            )
            await asyncio.sleep(self.health_interval_s)

    async def _probe(self, worker: WorkerHandle) -> None:
        try:
            status, document = await _worker_request(
                worker.url, "GET", "/healthz", timeout=max(2.0, self.health_interval_s)
            )
        except (OSError, asyncio.TimeoutError, ValueError, ConnectionError):
            worker.consecutive_failures += 1
            if worker.consecutive_failures >= self.health_failures and worker.url in self.ring:
                self._evict_worker(worker)
            return
        if status != 200:
            worker.consecutive_failures += 1
            if worker.consecutive_failures >= self.health_failures and worker.url in self.ring:
                self._evict_worker(worker)
            return
        worker.consecutive_failures = 0
        worker.draining = bool(document.get("draining"))
        depth = document.get("queue_depth")
        if isinstance(depth, int):
            worker.queue_depth = depth
        name = document.get("name")
        if isinstance(name, str) and name:
            worker.name = name
        if not worker.healthy and not worker.draining:
            # Recovered: rejoin the ring (its old keys flow back home).
            worker.healthy = True
            self.ring.add(worker.url)
            self.registry.counter("router.worker_rejoins").inc()

    # ------------------------------------------------------------------
    # dispatch + watch
    # ------------------------------------------------------------------
    def _start_dispatch(self, job: Job) -> None:
        self._pending_primaries += 1
        task = asyncio.get_running_loop().create_task(
            self._dispatch_and_watch(job), name=f"dispatch-{job.id}"
        )
        self._dispatchers.add(task)
        task.add_done_callback(self._dispatchers.discard)

    def _settle(self, job: Job, result: dict | None, error: str | None) -> None:
        if job.terminal:
            return
        settled = self.table.finish(job, result=result, error=error)
        counter = "router.completed" if error is None else "router.failed"
        self.registry.counter(counter).inc(len(settled))
        self._pending_primaries -= 1
        for done_job in settled:
            latency_ms = int((done_job.finished_at - done_job.submitted_at) * 1000)
            self.registry.histogram("router.job_latency_ms").observe(latency_ms)
            if self.journal is not None:
                self.journal.record_done(done_job)

    async def _send_dispatch(self, worker: WorkerHandle, job: Job) -> tuple[int, dict]:
        """Enqueue *job* for batched POSTing to *worker*.

        Dispatch tasks that place jobs on the same worker in the same
        event-loop tick share one ``POST /v1/jobs`` round-trip (the
        protocol's batch envelope carries all their specs + ids), so a
        1000-job sweep costs tens of worker requests instead of 1000.
        Returns this job's view of the shared response, or raises the
        shared transport error.
        """
        future = asyncio.get_running_loop().create_future()
        self._dispatch_buffers.setdefault(worker.url, []).append((job, future))
        if worker.url not in self._flushing:
            self._flushing.add(worker.url)
            task = asyncio.get_running_loop().create_task(
                self._flush_dispatches(worker), name=f"dispatch-flush-{worker.url}"
            )
            self._dispatchers.add(task)
            task.add_done_callback(self._dispatchers.discard)
        return await future

    async def _flush_dispatches(self, worker: WorkerHandle) -> None:
        try:
            await asyncio.sleep(0)  # let same-tick dispatchers pile on
            while True:
                buffer = self._dispatch_buffers.get(worker.url) or []
                if not buffer:
                    return
                entries = buffer[: self.dispatch_batch]
                del buffer[: len(entries)]
                self.registry.histogram("router.dispatch_batch_size").observe(
                    len(entries)
                )
                try:
                    status, document = await _worker_request(
                        worker.url,
                        "POST",
                        "/v1/jobs",
                        {
                            "jobs": [job.spec.as_wire() for job, _ in entries],
                            "ids": [job.id for job, _ in entries],
                        },
                        timeout=10.0,
                    )
                except (
                    OSError,
                    asyncio.TimeoutError,
                    ValueError,
                    ConnectionError,
                ) as error:
                    for _, future in entries:
                        if not future.done():
                            future.set_exception(error)
                    continue
                for _, future in entries:
                    if not future.done():
                        future.set_result((status, document))
        finally:
            self._flushing.discard(worker.url)

    async def _dispatch_and_watch(self, job: Job) -> None:
        """Place one primary on a worker and follow it to a terminal state.

        Every transport failure re-enters the placement loop: the ring may
        have changed (dead worker evicted, drain observed), and the shared
        result store guarantees a re-dispatched job never duplicates work
        that already published.
        """
        starve_rounds = 0
        while not job.terminal:
            if self._draining:
                return  # job stays pending; the journal re-dispatches it
            worker, stolen = self._choose_worker(job.fingerprint)
            if worker is None:
                starve_rounds += 1
                self.registry.counter("router.no_workers_waits").inc()
                await asyncio.sleep(min(2.0, 0.1 * starve_rounds))
                continue
            starve_rounds = 0
            if stolen:
                self.registry.counter("router.steals").inc()
            try:
                status, document = await self._send_dispatch(worker, job)
            except (OSError, asyncio.TimeoutError, ValueError, ConnectionError):
                worker.consecutive_failures += 1
                self.registry.counter("router.dispatch_errors").inc()
                await asyncio.sleep(0.1)
                continue
            if status in (429, 503):
                # Worker backpressure: let its queue depth refresh, then
                # re-place (likely stealing to a colder worker).
                worker.queue_depth = max(worker.queue_depth, self.steal_watermark)
                await asyncio.sleep(0.2)
                continue
            if status >= 400:
                self._settle(
                    job, None, f"worker {worker.url} rejected dispatch: HTTP {status}: "
                    f"{document.get('error', 'unknown')}"
                )
                return
            worker.queue_depth += 1  # optimistic; corrected by next probe
            self.registry.counter("router.dispatches").inc()
            if await self._watch(job, worker):
                return
            self.registry.counter("router.redispatches").inc()

    async def _watch(self, job: Job, worker: WorkerHandle) -> bool:
        """Long-poll *worker* until *job* settles; False to re-dispatch."""
        misses = 0
        while not job.terminal:
            if self._draining:
                return True  # leave pending for the journal
            try:
                status, document = await _worker_request(
                    worker.url,
                    "GET",
                    f"/v1/jobs/{job.id}?wait={self.watch_poll_s:g}",
                    timeout=self.watch_poll_s + 5.0,
                )
            except (OSError, asyncio.TimeoutError, ValueError, ConnectionError):
                misses += 1
                if misses >= 2 or not worker.routable:
                    return False  # worker presumed gone: re-dispatch
                await asyncio.sleep(0.2)
                continue
            misses = 0
            if status == 404:
                # The worker restarted without its table: re-dispatch.
                return False
            if status != 200:
                await asyncio.sleep(0.2)
                continue
            if document.get("status") == "running" and job.status == QUEUED:
                self.table.mark_running(job)  # mirror for status listings
            if document.get("status") in ("done", "failed", "cancelled"):
                self._settle(job, document.get("result"), document.get("error"))
                return True
        return True

    # ------------------------------------------------------------------
    # HTTP layer
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        try:
            try:
                request = await _read_request(reader)
                if request is None:
                    return
                method, path, query, body = request
                self.registry.counter("router.http_requests").inc()
                response = await self._route(method, path, query, body)
            except _HttpError as error:
                response = _encode_response(
                    error.status, {"error": str(error), **error.payload}, error.headers
                )
            except ProtocolError as error:
                response = _encode_response(400, {"error": str(error)})
            except (asyncio.IncompleteReadError, ConnectionError):
                return
            except Exception as error:  # noqa: BLE001 - never kill the acceptor
                self.registry.counter("router.http_errors").inc()
                response = _encode_response(
                    500, {"error": f"{type(error).__name__}: {error}"}
                )
            writer.write(response)
            await writer.drain()
        except (ConnectionError, BrokenPipeError):
            pass
        finally:
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _route(self, method: str, path: str, query: dict, body: bytes) -> bytes:
        if path == "/healthz" and method == "GET":
            return _encode_response(
                200,
                {
                    "ok": True,
                    "role": "router",
                    "draining": self._draining,
                    "queue_depth": self._pending_primaries,
                    "workers": len(self._routable()),
                    "protocol_version": PROTOCOL_VERSION,
                },
            )
        if path == "/metrics" and method == "GET":
            return _encode_response(200, self._metrics_document())
        if path == "/v1/workers" and method == "GET":
            return _encode_response(
                200,
                {"workers": [w.public() for w in sorted(self.workers.values(), key=lambda w: w.url)]},
            )
        if path == "/v1/workers/register" and method == "POST":
            return self._register_worker(body)
        if path == "/v1/jobs":
            if method == "POST":
                return self._post_jobs(body)
            if method == "GET":
                return self._list_jobs(query)
            raise _HttpError(405, f"{method} not allowed on {path}")
        if path.startswith("/v1/jobs/"):
            job_id = path[len("/v1/jobs/"):]
            if method == "GET":
                return await self._get_job(job_id, query)
            if method == "DELETE":
                return self._cancel_job(job_id)
            raise _HttpError(405, f"{method} not allowed on {path}")
        raise _HttpError(404, f"no route for {method} {path}")

    def _register_worker(self, body: bytes) -> bytes:
        try:
            payload = json.loads(body.decode("utf-8") or "null")
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise _HttpError(400, f"request body is not valid JSON: {error}") from None
        if not isinstance(payload, dict) or not isinstance(payload.get("url"), str):
            raise _HttpError(400, "register body must be {'url': ..., 'name'?: ...}")
        name = payload.get("name")
        if name is not None and not isinstance(name, str):
            raise _HttpError(400, "name must be a string")
        handle = self._add_worker(payload["url"], name=name)
        return _encode_response(200, {"registered": handle.public()})

    def _post_jobs(self, body: bytes) -> bytes:
        if self._draining:
            raise _HttpError(503, "router is draining", {"Retry-After": "5"})
        try:
            payload = json.loads(body.decode("utf-8") or "null")
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise _HttpError(400, f"request body is not valid JSON: {error}") from None
        specs = parse_batch(payload)
        new_fingerprints: set[str] = set()
        new_work = 0
        for spec in specs:
            digest = spec.fingerprint()
            if digest in new_fingerprints or self.table.active_primary(digest) is not None:
                continue
            new_fingerprints.add(digest)
            new_work += 1
        if self._pending_primaries + new_work > self.queue_size:
            self.registry.counter("router.rejected_429").inc()
            raise _HttpError(
                429,
                f"cluster queue full ({self._pending_primaries}/{self.queue_size} pending)",
                {"Retry-After": str(self._retry_after())},
            )
        accepted = []
        for spec in specs:
            job, coalesced = self.table.submit(spec)
            if self.journal is not None:
                self.journal.record_submit(job)
            if coalesced:
                self.registry.counter("router.coalesce_hits").inc()
            else:
                self._start_dispatch(job)
            self.registry.counter("router.submitted").inc()
            accepted.append(
                {
                    "id": job.id,
                    "status": job.status,
                    "fingerprint": job.fingerprint,
                    "coalesced": coalesced,
                    "coalesced_into": job.coalesced_into,
                }
            )
        return _encode_response(202, {"protocol_version": PROTOCOL_VERSION, "jobs": accepted})

    def _retry_after(self) -> int:
        workers = max(1, len(self._routable()))
        return max(1, min(60, self._pending_primaries // workers))

    def _list_jobs(self, query: dict) -> bytes:
        status = query.get("status")
        jobs = [
            job.public(include_result=False)
            for job in sorted(self.table.jobs.values(), key=lambda j: j.id)
            if status is None or job.status == status
        ]
        return _encode_response(200, {"jobs": jobs})

    async def _get_job(self, job_id: str, query: dict) -> bytes:
        job = self.table.jobs.get(job_id)
        if job is None:
            raise _HttpError(
                404,
                f"no such job {job_id!r}",
                payload={"next_id": self.table.next_id},
            )
        wait = 0.0
        if "wait" in query:
            try:
                wait = min(MAX_LONGPOLL_S, max(0.0, float(query["wait"])))
            except ValueError:
                raise _HttpError(400, "wait must be a number of seconds") from None
        deadline = time.monotonic() + wait
        while not job.terminal and time.monotonic() < deadline and not self._draining:
            remaining = deadline - time.monotonic()
            with contextlib.suppress(asyncio.TimeoutError):
                await asyncio.wait_for(
                    job.done_event.wait(), timeout=min(_LONGPOLL_SLICE_S, remaining)
                )
        return _encode_response(200, job.public())

    def _cancel_job(self, job_id: str) -> bytes:
        job = self.table.jobs.get(job_id)
        if job is None:
            raise _HttpError(
                404,
                f"no such job {job_id!r}",
                payload={"next_id": self.table.next_id},
            )
        if job.terminal:
            return _encode_response(200, job.public(include_result=False))
        if job.status != QUEUED:
            raise _HttpError(409, f"job {job_id} is {job.status}; only queued jobs cancel")
        was_primary = job.coalesced_into is None
        settled = self.table.cancel(job)
        self.registry.counter("router.cancelled").inc(len(settled))
        if was_primary:
            self._pending_primaries -= 1
        if self.journal is not None:
            for cancelled in settled:
                self.journal.record_done(cancelled)
        return _encode_response(200, job.public(include_result=False))

    # ------------------------------------------------------------------
    def _metrics_document(self) -> dict:
        histogram = self.registry.get("router.job_latency_ms")
        quantiles = {"p50": None, "p90": None, "p99": None}
        if histogram is not None and histogram.total:
            points = sorted(histogram.buckets.items())
            total = histogram.total
            for label, fraction in (("p50", 0.50), ("p90", 0.90), ("p99", 0.99)):
                threshold = fraction * total
                seen = 0
                for bucket, count in points:
                    seen += count
                    if seen >= threshold:
                        quantiles[label] = bucket
                        break
        self.registry.counter("router.queue_depth").set(self._pending_primaries)
        return {
            "protocol_version": PROTOCOL_VERSION,
            "router": {
                "draining": self._draining,
                "queue_depth": self._pending_primaries,
                "queue_size": self.queue_size,
                "steal_watermark": self.steal_watermark,
                "jobs_total": len(self.table.jobs),
                "uptime_s": round(time.time() - self._started_at, 3),
                "latency_ms": quantiles,
                "workers": [w.public() for w in sorted(self.workers.values(), key=lambda w: w.url)],
            },
            "metrics": self.registry.as_dict(),
        }


# ----------------------------------------------------------------------
# Embedding helpers
# ----------------------------------------------------------------------
async def _router_main(router: RouterServer, announce=None) -> None:
    await router.start()
    if announce is not None:
        announce(router)
    await router.run_until_signalled()


def run_router(router: RouterServer, announce=None) -> int:
    """Blocking entry point used by ``repro serve --router``."""
    asyncio.run(_router_main(router, announce))
    return 0


class BackgroundRouter:
    """A RouterServer on its own thread + event loop (tests, fixtures)."""

    def __init__(self, **router_kwargs):
        self._kwargs = router_kwargs
        self.router: RouterServer | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._stop_requested: asyncio.Event | None = None
        self._graceful = True
        self._startup_error: BaseException | None = None

    @property
    def port(self) -> int:
        assert self.router is not None
        return self.router.port

    @property
    def base_url(self) -> str:
        assert self.router is not None
        return f"http://{self.router.host}:{self.router.port}"

    async def _main(self) -> None:
        self._stop_requested = asyncio.Event()
        self.router = RouterServer(**self._kwargs)
        try:
            await self.router.start()
        except BaseException as error:
            self._startup_error = error
            self._ready.set()
            raise
        self._ready.set()
        await self._stop_requested.wait()
        if self._graceful:
            await self.router.drain()
        else:
            await self.router.abort()

    def _run(self) -> None:
        self._loop = asyncio.new_event_loop()
        try:
            self._loop.run_until_complete(self._main())
        except BaseException:
            self._ready.set()
        finally:
            self._loop.close()

    def start(self) -> "BackgroundRouter":
        self._thread = threading.Thread(target=self._run, name="router-bg", daemon=True)
        self._thread.start()
        self._ready.wait(timeout=30)
        if self._startup_error is not None:
            raise self._startup_error
        if self.router is None or self._loop is None:
            raise RuntimeError("background router failed to start")
        return self

    def stop(self, graceful: bool = True) -> None:
        if self._loop is None or self._thread is None or self._stop_requested is None:
            return
        self._graceful = graceful
        # Idempotent after the loop closed (crash-simulation teardowns).
        with contextlib.suppress(RuntimeError):
            self._loop.call_soon_threadsafe(self._stop_requested.set)
        self._thread.join(timeout=60)

    def __enter__(self) -> "BackgroundRouter":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop(graceful=True)
