"""Client SDK for the serving layer (stdlib-only, synchronous).

:class:`ServeClient` wraps the HTTP API with the retry discipline a
flaky network needs:

* **jittered exponential backoff** on connection failures, dropped or
  truncated responses, and 5xx errors — delay doubles per attempt with
  a multiplicative jitter so synchronized clients fan out;
* **backpressure compliance** — 429/503 responses sleep for the server's
  ``Retry-After`` hint (capped) before retrying;
* **idempotent resubmission** — a retried ``POST /v1/jobs`` whose first
  attempt actually reached the server coalesces onto the original job by
  cache fingerprint instead of duplicating work, so submits are safe to
  retry blindly;
* **streaming poll** — :meth:`wait` long-polls ``GET /v1/jobs/{id}``
  (``?wait=``) so results arrive within one round-trip of completion
  without hammering the server.

Injectable ``sleep`` and ``rng`` keep the backoff schedule testable.
"""

from __future__ import annotations

import http.client
import json
import random
import time
from dataclasses import dataclass
from urllib.parse import urlsplit

from repro.errors import ReproError
from repro.serve.protocol import TERMINAL_STATES


class ServeError(ReproError):
    """A request that failed for good (no further retries).

    ``status`` is the HTTP status for 4xx failures (None when the
    transport itself gave out); ``payload`` carries the server's JSON
    error body, e.g. the ``next_id`` watermark on 404s.
    """

    def __init__(
        self, message: str, status: int | None = None, payload: dict | None = None
    ):
        super().__init__(message)
        self.status = status
        self.payload = payload or {}


class JobFailed(ServeError):
    """A job reached a terminal state other than ``done``."""


#: Exceptions that mean "the bytes never arrived / arrived torn" —
#: always safe to retry against this API.
_RETRYABLE_ERRORS = (
    ConnectionError,
    TimeoutError,
    http.client.HTTPException,
    EOFError,
    OSError,
)


@dataclass(frozen=True)
class RetryPolicy:
    """Backoff schedule for transient failures."""

    retries: int = 5
    backoff_s: float = 0.2
    max_backoff_s: float = 5.0
    #: cap applied to server-provided Retry-After hints
    max_retry_after_s: float = 30.0

    def delay(self, attempt: int, rng: random.Random) -> float:
        """Jittered exponential delay before retry *attempt* (0-based)."""
        base = min(self.max_backoff_s, self.backoff_s * (2**attempt))
        return base * (0.5 + rng.random() / 2)


class ServeClient:
    """Synchronous client for one serve endpoint."""

    def __init__(
        self,
        base_url: str = "http://127.0.0.1:8765",
        timeout: float = 30.0,
        retry: RetryPolicy | None = None,
        sleep=time.sleep,
        rng: random.Random | None = None,
    ):
        split = urlsplit(base_url if "//" in base_url else f"http://{base_url}")
        if split.scheme not in ("", "http"):
            raise ServeError(f"unsupported scheme {split.scheme!r} (http only)")
        self.host = split.hostname or "127.0.0.1"
        self.port = split.port or 80
        self.timeout = timeout
        self.retry = retry if retry is not None else RetryPolicy()
        self._sleep = sleep
        self._rng = rng if rng is not None else random.Random()

    # ------------------------------------------------------------------
    def _once(self, method: str, path: str, payload: dict | None):
        """One HTTP exchange: (status, headers, parsed-JSON body)."""
        connection = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            body = None
            headers = {}
            if payload is not None:
                body = json.dumps(payload).encode("utf-8")
                headers["Content-Type"] = "application/json"
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            raw = response.read()  # raises on mid-response disconnect
            try:
                document = json.loads(raw.decode("utf-8")) if raw else {}
            except (UnicodeDecodeError, json.JSONDecodeError) as error:
                # A truncated body that still "read" cleanly: retryable.
                raise http.client.HTTPException(f"undecodable response body: {error}") from None
            return response.status, dict(response.getheaders()), document
        finally:
            connection.close()

    def request(self, method: str, path: str, payload: dict | None = None) -> dict:
        """Issue one API call with the full retry discipline."""
        policy = self.retry
        last_error: str = "no attempts made"
        for attempt in range(policy.retries + 1):
            try:
                status, headers, document = self._once(method, path, payload)
            except _RETRYABLE_ERRORS as error:
                last_error = f"{type(error).__name__}: {error}"
                if attempt >= policy.retries:
                    break
                self._sleep(policy.delay(attempt, self._rng))
                continue
            if status in (429, 503):
                last_error = f"HTTP {status}: {document.get('error', 'overloaded')}"
                if attempt >= policy.retries:
                    break
                retry_after = headers.get("Retry-After") or headers.get("retry-after")
                try:
                    hinted = float(retry_after) if retry_after is not None else None
                except ValueError:
                    hinted = None
                if hinted is not None:
                    self._sleep(min(hinted, policy.max_retry_after_s))
                else:
                    self._sleep(policy.delay(attempt, self._rng))
                continue
            if status >= 500:
                last_error = f"HTTP {status}: {document.get('error', 'server error')}"
                if attempt >= policy.retries:
                    break
                self._sleep(policy.delay(attempt, self._rng))
                continue
            if status >= 400:
                raise ServeError(
                    f"{method} {path} -> HTTP {status}: {document.get('error', 'request failed')}",
                    status=status,
                    payload=document,
                )
            return document
        raise ServeError(
            f"{method} {path} failed after {policy.retries + 1} attempt(s): {last_error}"
        )

    # ------------------------------------------------------------------
    # API surface
    # ------------------------------------------------------------------
    def submit(self, specs) -> list[dict]:
        """Submit one spec (dict) or a list; returns per-job receipts.

        Safe to retry: duplicate submissions coalesce server-side onto
        the same fingerprint, so at-least-once delivery costs nothing.
        """
        if isinstance(specs, dict):
            payload: dict = specs
        else:
            payload = {"jobs": list(specs)}
        document = self.request("POST", "/v1/jobs", payload)
        return document["jobs"]

    def job(self, job_id: str, wait: float | None = None) -> dict:
        """Fetch one job's status/result; ``wait`` long-polls server-side."""
        path = f"/v1/jobs/{job_id}"
        if wait is not None:
            path += f"?wait={wait:g}"
        return self.request("GET", path)

    def jobs(self, status: str | None = None) -> list[dict]:
        path = "/v1/jobs" + (f"?status={status}" if status else "")
        return self.request("GET", path)["jobs"]

    def cancel(self, job_id: str) -> dict:
        return self.request("DELETE", f"/v1/jobs/{job_id}")

    def metrics(self) -> dict:
        return self.request("GET", "/metrics")

    def healthz(self) -> dict:
        return self.request("GET", "/healthz")

    # ------------------------------------------------------------------
    def wait(self, job_id: str, timeout: float = 300.0, poll: float = 5.0) -> dict:
        """Block until *job_id* is terminal; returns its final document.

        Survives a server restart mid-wait: transport failures (the
        connection dropped, the socket refused while the server rebinds)
        are retried against the **original job id** until the overall
        deadline — a restarted server recovers pending jobs from its
        spool under their old ids, so the poll simply resumes.  A 404 is
        classified against the server's spool id watermark (``next_id``
        in the error body): an id below the watermark was completed and
        compacted away during the restart, an id at or above it was
        never issued.

        Raises :class:`JobFailed` on a failed/cancelled job and
        :class:`ServeError` on timeout.
        """
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ServeError(f"timed out waiting for job {job_id}")
            try:
                document = self.job(job_id, wait=min(poll, max(0.05, remaining)))
            except ServeError as error:
                if error.status == 404:
                    raise self._classify_missing(job_id, error) from None
                if error.status is not None:
                    raise
                # Transport gave out (likely a restart in progress): keep
                # resuming with the original id until the deadline.
                if deadline - time.monotonic() <= 0:
                    raise ServeError(
                        f"timed out waiting for job {job_id}: {error}"
                    ) from None
                self._sleep(min(self.retry.backoff_s, max(0.05, deadline - time.monotonic())))
                continue
            if document["status"] in TERMINAL_STATES:
                if document["status"] != "done":
                    raise JobFailed(
                        f"job {job_id} {document['status']}: {document.get('error')}"
                    )
                return document

    @staticmethod
    def _classify_missing(job_id: str, error: ServeError) -> ServeError:
        """Turn a 404 into a precise diagnosis using the id watermark."""
        next_id = error.payload.get("next_id")
        try:
            numeric = int(job_id.split("-", 1)[1])
        except (IndexError, ValueError):
            numeric = None
        if isinstance(next_id, int) and numeric is not None and numeric < next_id:
            return ServeError(
                f"job {job_id} completed before a server restart and its "
                "record was compacted; resubmit to get the (cached) result",
                status=404,
                payload=error.payload,
            )
        return ServeError(
            f"job {job_id} was never issued by this server",
            status=404,
            payload=error.payload,
        )

    def submit_and_wait(self, specs, timeout: float = 300.0, poll: float = 5.0) -> list[dict]:
        """Submit a batch and wait for every job; returns final documents."""
        receipts = self.submit(specs)
        return [self.wait(receipt["id"], timeout=timeout, poll=poll) for receipt in receipts]
