"""Wire protocol of the serving layer: job specs, validation, fingerprints.

Everything that crosses the HTTP boundary is validated here, *before* it
touches the queue or a worker.  Two job kinds exist:

* ``run`` — one benchmark simulation, described by the same knobs the CLI
  exposes (benchmark, machine-technique flags, seed, run lengths).  The
  spec is validated against :mod:`repro.pipeline.config` (unknown enum
  values, non-positive lengths and unknown benchmarks are rejected with a
  400 before enqueue) and carries the **same cache fingerprint** as
  :mod:`repro.analysis.cache` — which is what the server's singleflight
  coalescer and the client's idempotent resubmission key on.
* ``verify`` — one differential-verification replay: an HPRISC program
  co-simulated against the functional emulator under a configuration
  matrix (:mod:`repro.verify`), so the fuzzing corpus can be replayed
  over the wire.
* ``trace`` — one tracefile simulation (:mod:`repro.trace`), full or
  SimPoint-sampled.  The spec carries the trace's **content hash** from
  the tracefile header; the fingerprint keys on that hash — never on a
  path or mtime — so identical traces coalesce across workers whatever
  their checkout layout.  When a submitting client omits the hash, the
  parser resolves the reference locally and reads it from the header;
  journal replays carry the hash and need no file access.

Specs are frozen dataclasses; ``as_wire()`` round-trips through
``parse_spec()`` losslessly, which the queue-persistence journal relies
on.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass

from repro.analysis.cache import fingerprint as cache_fingerprint
from repro.analysis.runner import SHADOW_SIZES
from repro.errors import ReproError
from repro.pipeline.config import (
    EIGHT_WIDE,
    FOUR_WIDE,
    BypassModel,
    MachineConfig,
    RegFileModel,
    RenameModel,
    SchedulerModel,
)
from repro.pipeline.processor import TIMING_MODEL_VERSION
from repro.trace.sampling import (
    DEFAULT_DIMS,
    DEFAULT_INTERVAL,
    DEFAULT_K,
    DEFAULT_SAMPLE_SEED,
    DEFAULT_SAMPLE_WARMUP,
)
from repro.workloads.profiles import SPEC_BENCHMARKS

#: Bump when the request/response shapes change incompatibly.
#: v2: batch submissions may carry caller-assigned job ids (``"ids"``),
#: which is how the cluster router pins its global ids onto workers, and
#: ``/healthz`` reports queue depth for routing decisions.
PROTOCOL_VERSION = 2

#: Job lifecycle states, as serialized on the wire.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

#: States a job can never leave.
TERMINAL_STATES = (DONE, FAILED, CANCELLED)


class ProtocolError(ReproError):
    """A malformed or invalid request (maps to HTTP 400)."""


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ProtocolError(message)


def _get_int(payload: dict, key: str, default: int, minimum: int = 1) -> int:
    value = payload.get(key, default)
    _require(isinstance(value, int) and not isinstance(value, bool), f"{key} must be an integer")
    _require(value >= minimum, f"{key} must be >= {minimum}")
    return value


def _get_bool(payload: dict, key: str, default: bool) -> bool:
    value = payload.get(key, default)
    _require(isinstance(value, bool), f"{key} must be a boolean")
    return value


def _enum_value(payload: dict, key: str, enum_cls, default) -> str:
    value = payload.get(key, default)
    try:
        return enum_cls(value).value
    except ValueError:
        known = ", ".join(member.value for member in enum_cls)
        raise ProtocolError(f"unknown {key} {value!r} (known: {known})") from None


def _machine_config(spec) -> MachineConfig:
    """Build the machine a run/trace spec describes (CLI flag semantics)."""
    config = FOUR_WIDE if spec.width == 4 else EIGHT_WIDE
    techniques: dict = {}
    if spec.scheduler != SchedulerModel.BASE.value:
        techniques["scheduler"] = SchedulerModel(spec.scheduler)
    if spec.regfile != RegFileModel.BASE.value:
        techniques["regfile"] = RegFileModel(spec.regfile)
    if spec.half_rename:
        techniques["rename"] = RenameModel.HALF_PORTS
    if spec.half_bypass:
        techniques["bypass"] = BypassModel.HALF
    if not spec.predictor:
        techniques["predictor_entries"] = None
    if techniques:
        config = config.with_techniques(**techniques)
    if spec.backend != config.backend:
        config = dataclasses.replace(config, backend=spec.backend)
    return config


@dataclass(frozen=True)
class RunSpec:
    """One benchmark simulation request (job kind ``run``)."""

    benchmark: str
    width: int = 4
    scheduler: str = SchedulerModel.BASE.value
    regfile: str = RegFileModel.BASE.value
    half_rename: bool = False
    half_bypass: bool = False
    predictor: bool = True
    seed: int = 42
    insts: int = 15_000
    warmup: int = 20_000
    shadow: bool = False
    priority: int = 0
    #: cycle-loop backend the job asks for ("python"/"vector"/"native");
    #: part of the
    #: config and therefore of the fingerprint, so coalescing and cached
    #: results never cross backends.  A server-side ``REPRO_BACKEND``
    #: override still wins inside the runner (stats are bit-identical
    #: either way — only cache locality differs).
    backend: str = "python"

    kind = "run"

    def config(self) -> MachineConfig:
        """Build the machine this spec describes (CLI flag semantics)."""
        return _machine_config(self)

    @property
    def shadow_sizes(self) -> tuple[int, ...] | None:
        return SHADOW_SIZES if self.shadow else None

    def fingerprint(self) -> str:
        """The result-cache digest — the coalescing/idempotency key."""
        return cache_fingerprint(
            self.benchmark, self.seed, self.insts, self.warmup, self.config(), self.shadow_sizes
        )

    def as_wire(self) -> dict:
        document = dataclasses.asdict(self)
        document["kind"] = self.kind
        return document


@dataclass(frozen=True)
class VerifySpec:
    """One differential-verification replay request (job kind ``verify``)."""

    source: str
    #: config-matrix filter names (:func:`repro.verify.config_matrix`);
    #: None replays the full 8-machine matrix
    configs: tuple[str, ...] | None = None
    budget: int = 50_000
    priority: int = 0

    kind = "verify"

    def fingerprint(self) -> str:
        identity = {
            "kind": self.kind,
            "model_version": TIMING_MODEL_VERSION,
            "source": self.source,
            "configs": list(self.configs) if self.configs else None,
            "budget": self.budget,
        }
        payload = json.dumps(identity, sort_keys=True)
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def as_wire(self) -> dict:
        return {
            "kind": self.kind,
            "source": self.source,
            "configs": list(self.configs) if self.configs else None,
            "budget": self.budget,
            "priority": self.priority,
        }


@dataclass(frozen=True)
class TraceSpec:
    """One tracefile simulation request (job kind ``trace``).

    ``trace`` is a human reference (corpus name or path) used to *open*
    the file on the executing worker; ``content_hash`` is the identity.
    The fingerprint — hence coalescing, caching and idempotent
    resubmission — keys only on the hash, so the same trace content
    served from different paths or checkouts is one job.
    """

    trace: str
    #: ``trace_sha256`` from the tracefile header.  Filled in by the
    #: parser (reading the local header) when the caller omits it;
    #: trusted verbatim when present, so journal replays are lossless
    #: and need no tracefile on disk at parse time.
    content_hash: str
    width: int = 4
    scheduler: str = SchedulerModel.BASE.value
    regfile: str = RegFileModel.BASE.value
    half_rename: bool = False
    half_bypass: bool = False
    predictor: bool = True
    #: instruction budget; None simulates the whole trace
    insts: int | None = None
    warmup: int = 0
    #: SimPoint-style sampled simulation instead of a full run
    sampled: bool = False
    interval: int = DEFAULT_INTERVAL
    k: int = DEFAULT_K
    sample_warmup: int = DEFAULT_SAMPLE_WARMUP
    dims: int = DEFAULT_DIMS
    sample_seed: int = DEFAULT_SAMPLE_SEED
    warm_caches: bool = True
    shadow: bool = False
    priority: int = 0
    backend: str = "python"

    kind = "trace"

    def config(self) -> MachineConfig:
        """Build the machine this spec describes (CLI flag semantics)."""
        return _machine_config(self)

    @property
    def shadow_sizes(self) -> tuple[int, ...] | None:
        return SHADOW_SIZES if self.shadow else None

    def fingerprint(self) -> str:
        """The result-cache digest — keyed on the trace content hash."""
        # Deferred: only trace jobs need the trace stack.
        from repro.trace.run import sampled_fingerprint, trace_fingerprint

        if self.sampled:
            return sampled_fingerprint(
                self.content_hash,
                self.config(),
                interval=self.interval,
                k=self.k,
                warmup=self.sample_warmup,
                dims=self.dims,
                seed=self.sample_seed,
                warm_caches=self.warm_caches,
                shadow_sizes=self.shadow_sizes,
            )
        return trace_fingerprint(
            self.content_hash,
            self.config(),
            insts=self.insts,
            warmup=self.warmup,
            shadow_sizes=self.shadow_sizes,
        )

    def as_wire(self) -> dict:
        document = dataclasses.asdict(self)
        document["kind"] = self.kind
        return document


JobSpec = RunSpec | VerifySpec | TraceSpec

_RUN_KEYS = frozenset(
    (
        "kind",
        "benchmark",
        "width",
        "scheduler",
        "regfile",
        "half_rename",
        "half_bypass",
        "predictor",
        "seed",
        "insts",
        "warmup",
        "shadow",
        "priority",
        "backend",
    )
)
_VERIFY_KEYS = frozenset(("kind", "source", "configs", "budget", "priority"))
_TRACE_KEYS = frozenset(
    (
        "kind",
        "trace",
        "content_hash",
        "width",
        "scheduler",
        "regfile",
        "half_rename",
        "half_bypass",
        "predictor",
        "insts",
        "warmup",
        "sampled",
        "interval",
        "k",
        "sample_warmup",
        "dims",
        "sample_seed",
        "warm_caches",
        "shadow",
        "priority",
        "backend",
    )
)


def _parse_run(payload: dict) -> RunSpec:
    benchmark = payload.get("benchmark")
    _require(isinstance(benchmark, str) and bool(benchmark), "benchmark is required")
    _require(
        benchmark in SPEC_BENCHMARKS,
        f"unknown benchmark {benchmark!r} (known: {', '.join(SPEC_BENCHMARKS)})",
    )
    width = payload.get("width", 4)
    _require(width in (4, 8), "width must be 4 or 8")
    backend = payload.get("backend", "python")
    _require(
        backend in ("python", "vector", "native"),
        f"unknown backend {backend!r} (known: python, vector, native)",
    )
    spec = RunSpec(
        benchmark=benchmark,
        width=width,
        scheduler=_enum_value(payload, "scheduler", SchedulerModel, SchedulerModel.BASE.value),
        regfile=_enum_value(payload, "regfile", RegFileModel, RegFileModel.BASE.value),
        half_rename=_get_bool(payload, "half_rename", False),
        half_bypass=_get_bool(payload, "half_bypass", False),
        predictor=_get_bool(payload, "predictor", True),
        seed=_get_int(payload, "seed", 42, minimum=0),
        insts=_get_int(payload, "insts", 15_000),
        warmup=_get_int(payload, "warmup", 20_000, minimum=0),
        shadow=_get_bool(payload, "shadow", False),
        priority=_get_int(payload, "priority", 0, minimum=-(10**6)),
        backend=backend,
    )
    spec.config()  # surface ConfigurationError-shaped problems as 400s
    return spec


def _parse_verify(payload: dict) -> VerifySpec:
    source = payload.get("source")
    _require(isinstance(source, str) and bool(source.strip()), "source is required")
    configs = payload.get("configs")
    if configs is not None:
        _require(
            isinstance(configs, (list, tuple))
            and all(isinstance(name, str) for name in configs)
            and bool(configs),
            "configs must be a non-empty list of names",
        )
        # Validate the filter now (unknown names raise ConfigurationError).
        from repro.verify import config_matrix

        try:
            config_matrix(names=list(configs))
        except ReproError as error:
            raise ProtocolError(str(error)) from None
        configs = tuple(configs)
    return VerifySpec(
        source=source,
        configs=configs,
        budget=_get_int(payload, "budget", 50_000),
        priority=_get_int(payload, "priority", 0, minimum=-(10**6)),
    )


def _parse_trace(payload: dict) -> TraceSpec:
    trace = payload.get("trace")
    _require(isinstance(trace, str) and bool(trace.strip()), "trace is required")
    width = payload.get("width", 4)
    _require(width in (4, 8), "width must be 4 or 8")
    backend = payload.get("backend", "python")
    _require(
        backend in ("python", "vector", "native"),
        f"unknown backend {backend!r} (known: python, vector, native)",
    )
    content_hash = payload.get("content_hash")
    if content_hash is None:
        # Deferred: only trace jobs need the trace stack.
        from repro.trace.corpus import resolve_trace
        from repro.trace.format import read_header

        try:
            content_hash = read_header(resolve_trace(trace))["trace_sha256"]
        except ReproError as error:
            raise ProtocolError(str(error)) from None
    _require(
        isinstance(content_hash, str) and bool(content_hash),
        "content_hash must be a non-empty string",
    )
    insts = payload.get("insts")
    if insts is not None:
        _require(
            isinstance(insts, int) and not isinstance(insts, bool) and insts >= 1,
            "insts must be >= 1 (or null for the whole trace)",
        )
    spec = TraceSpec(
        trace=trace,
        content_hash=content_hash,
        width=width,
        scheduler=_enum_value(payload, "scheduler", SchedulerModel, SchedulerModel.BASE.value),
        regfile=_enum_value(payload, "regfile", RegFileModel, RegFileModel.BASE.value),
        half_rename=_get_bool(payload, "half_rename", False),
        half_bypass=_get_bool(payload, "half_bypass", False),
        predictor=_get_bool(payload, "predictor", True),
        insts=insts,
        warmup=_get_int(payload, "warmup", 0, minimum=0),
        sampled=_get_bool(payload, "sampled", False),
        interval=_get_int(payload, "interval", DEFAULT_INTERVAL),
        k=_get_int(payload, "k", DEFAULT_K),
        sample_warmup=_get_int(payload, "sample_warmup", DEFAULT_SAMPLE_WARMUP, minimum=0),
        dims=_get_int(payload, "dims", DEFAULT_DIMS),
        sample_seed=_get_int(payload, "sample_seed", DEFAULT_SAMPLE_SEED, minimum=0),
        warm_caches=_get_bool(payload, "warm_caches", True),
        shadow=_get_bool(payload, "shadow", False),
        priority=_get_int(payload, "priority", 0, minimum=-(10**6)),
        backend=backend,
    )
    spec.config()  # surface ConfigurationError-shaped problems as 400s
    return spec


def parse_spec(payload: object) -> JobSpec:
    """Validate one wire-level job spec; raises :class:`ProtocolError`."""
    _require(isinstance(payload, dict), "job spec must be a JSON object")
    assert isinstance(payload, dict)
    kind = payload.get("kind", "run")
    if kind == "run":
        unknown = set(payload) - _RUN_KEYS
        _require(not unknown, f"unknown run-spec field(s): {', '.join(sorted(unknown))}")
        return _parse_run(payload)
    if kind == "verify":
        unknown = set(payload) - _VERIFY_KEYS
        _require(not unknown, f"unknown verify-spec field(s): {', '.join(sorted(unknown))}")
        return _parse_verify(payload)
    if kind == "trace":
        unknown = set(payload) - _TRACE_KEYS
        _require(not unknown, f"unknown trace-spec field(s): {', '.join(sorted(unknown))}")
        return _parse_trace(payload)
    raise ProtocolError(f"unknown job kind {kind!r} (known: run, verify, trace)")


def parse_batch_with_ids(payload: object) -> tuple[list[JobSpec], list[str] | None]:
    """Parse a ``POST /v1/jobs`` body: specs plus optional assigned ids.

    The ``"ids"`` list (parallel to ``"jobs"``) lets a trusted caller —
    the cluster router — pin its own job ids onto a worker, so one job
    keeps a single identity across the whole cluster.  Absent ``"ids"``,
    the server assigns ids as before.
    """
    _require(isinstance(payload, dict), "request body must be a JSON object")
    assert isinstance(payload, dict)
    if "jobs" in payload:
        jobs = payload["jobs"]
        _require(isinstance(jobs, list) and bool(jobs), "jobs must be a non-empty list")
        extra = set(payload) - {"jobs", "ids"}
        _require(not extra, f"unknown batch field(s): {', '.join(sorted(extra))}")
        specs = [parse_spec(entry) for entry in jobs]
        ids = payload.get("ids")
        if ids is not None:
            _require(
                isinstance(ids, list)
                and len(ids) == len(specs)
                and all(isinstance(job_id, str) and job_id for job_id in ids),
                "ids must be a list of job-id strings parallel to jobs",
            )
        return specs, ids
    return [parse_spec(payload)], None


def parse_batch(payload: object) -> list[JobSpec]:
    """Parse a ``POST /v1/jobs`` body: a single spec or ``{"jobs": [...]}``."""
    specs, _ids = parse_batch_with_ids(payload)
    return specs
