"""Observability layer: metrics registry, stats export, traces, scorecard.

The subsystem has four parts, designed so the simulator's hot loop pays
nothing when observability is off:

* :mod:`repro.obs.registry` — a :class:`MetricsRegistry` of named
  counters / histograms / timers that pipeline components publish into
  **after** a run (guarded publishing: no per-cycle allocation), plus the
  :class:`StageProfiler` behind ``Processor(profile=True)``;
* :mod:`repro.obs.export` — the versioned run manifest
  (:data:`STATS_SCHEMA_VERSION`): one JSON per simulation carrying the
  config fingerprint, seed, workload and every paper-figure counter;
* :mod:`repro.obs.chrometrace` — a Chrome trace-event (``chrome://tracing``
  / Perfetto) exporter over ``Processor(record_schedule=True)`` data;
* :mod:`repro.obs.scorecard` — diffs two stats-JSON trees against
  tolerances; the CI regression gate (``repro report --baseline``).

See ``docs/OBSERVABILITY.md`` for schema and usage.
"""

# Re-exports are lazy (PEP 562): ``repro.obs.export`` imports the analysis
# layer (for the shared fingerprint), whose package __init__ imports the
# runner, which publishes into this package — an eager import here would
# close that loop into a circle.  Submodules import each other directly;
# only the convenience namespace resolves on first attribute access.
_EXPORTS = {
    "export_chrome_trace": "chrometrace",
    "write_chrome_trace": "chrometrace",
    "STATS_SCHEMA_VERSION": "export",
    "build_stats_export": "export",
    "load_stats_json": "export",
    "stats_filename": "export",
    "write_stats_json": "export",
    "CounterMetric": "registry",
    "HistogramMetric": "registry",
    "TimerMetric": "registry",
    "MetricsRegistry": "registry",
    "StageProfiler": "registry",
    "DEFAULT_TOLERANCES": "scorecard",
    "MetricDrift": "scorecard",
    "Scorecard": "scorecard",
    "compare_exports": "scorecard",
    "compare_trees": "scorecard",
    "render_scorecard": "scorecard",
}


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro.obs' has no attribute {name!r}")
    import importlib

    module = importlib.import_module(f"repro.obs.{module_name}")
    value = getattr(module, name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))


__all__ = [
    "STATS_SCHEMA_VERSION",
    "CounterMetric",
    "HistogramMetric",
    "TimerMetric",
    "MetricsRegistry",
    "StageProfiler",
    "build_stats_export",
    "stats_filename",
    "write_stats_json",
    "load_stats_json",
    "export_chrome_trace",
    "write_chrome_trace",
    "DEFAULT_TOLERANCES",
    "MetricDrift",
    "Scorecard",
    "compare_exports",
    "compare_trees",
    "render_scorecard",
]
