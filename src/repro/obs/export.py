"""Versioned per-run stats export (the run manifest).

One JSON document per simulation, carrying everything a later consumer —
the CI regression scorecard, a plotting notebook, a results archive —
needs to interpret the run without the code that produced it:

* ``schema_version`` (:data:`STATS_SCHEMA_VERSION`) and the timing-model
  version stamp;
* the run identity: benchmark, seed, run lengths, shadow sizes, the full
  machine config and its SHA-256 **fingerprint** (the same digest the
  result cache keys on, so a manifest can be matched to a cache record);
* every paper-figure counter (Tables 2/3, Figures 4/6/7/10) plus the
  derived ratios the figures plot;
* optionally: component metrics published into a
  :class:`~repro.obs.registry.MetricsRegistry`, and per-stage wall times
  from a :class:`~repro.obs.registry.StageProfiler` (under ``profile`` —
  excluded from scorecard comparison, wall time is machine noise).

Exports are written with sorted keys and a trailing newline so identical
runs produce **byte-identical** files — the CI determinism job diffs the
serial and parallel exports directly.
"""

from __future__ import annotations

import dataclasses
import enum
import json
from pathlib import Path

from repro.analysis.cache import fingerprint, serialize_result
from repro.errors import SimulationError
from repro.pipeline.config import MachineConfig
from repro.pipeline.processor import TIMING_MODEL_VERSION, SimulationResult

#: Bump whenever the export document gains/loses/renames fields.
STATS_SCHEMA_VERSION = 1

#: Derived ratios re-computed at export time (the figures' y-axes).
_DERIVED_PROPERTIES = (
    "ipc",
    "frac_two_pending",
    "frac_simultaneous",
    "frac_two_rf_reads",
    "predictor_accuracy",
    "branch_mispredict_rate",
)


def build_stats_export(
    result: SimulationResult,
    config: MachineConfig,
    *,
    benchmark: str,
    seed: int,
    insts: int,
    warmup: int,
    shadow_sizes: tuple[int, ...] | None = None,
    registry=None,
    profile=None,
) -> dict:
    """Flatten one run to the schema-versioned export document."""

    def plain(value):
        if isinstance(value, enum.Enum):
            return value.value
        if isinstance(value, dict):
            return {key: plain(inner) for key, inner in value.items()}
        if isinstance(value, (list, tuple)):
            return [plain(inner) for inner in value]
        return value

    stats = result.stats
    document = {
        "schema_version": STATS_SCHEMA_VERSION,
        "timing_model_version": TIMING_MODEL_VERSION,
        "fingerprint": fingerprint(benchmark, seed, insts, warmup, config, shadow_sizes),
        "run": {
            "benchmark": benchmark,
            "seed": seed,
            "insts": insts,
            "warmup": warmup,
            "shadow_sizes": list(shadow_sizes) if shadow_sizes else None,
            "workload": result.workload_name,
            "config_name": result.config_name,
        },
        "config": plain(dataclasses.asdict(config)),
        "result": serialize_result(result),
        "derived": {
            name: getattr(stats, name) for name in _DERIVED_PROPERTIES
        },
        "order_derived": {
            "frac_same": stats.order.frac_same,
            "frac_last_left": stats.order.frac_last_left,
        },
    }
    if registry is not None and len(registry):
        document["metrics"] = registry.as_dict()
    if profile is not None:
        document["profile"] = profile.as_dict()
    return document


def stats_filename(benchmark: str, config_name: str, seed: int) -> str:
    """Deterministic export filename for one run."""
    safe_config = config_name.replace("/", "_").replace(" ", "_")
    return f"{benchmark}__{safe_config}__s{seed}.stats.json"


def write_stats_json(document: dict, directory: Path | str) -> Path:
    """Write one export under *directory*; returns the file path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    run = document["run"]
    path = directory / stats_filename(
        run["benchmark"], run["config_name"], run["seed"]
    )
    payload = json.dumps(document, sort_keys=True, indent=1) + "\n"
    path.write_text(payload, encoding="utf-8")
    return path


def load_stats_json(path: Path | str) -> dict:
    """Load and version-check one export document."""
    path = Path(path)
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as error:
        raise SimulationError(f"unreadable stats export {path}: {error}") from error
    version = document.get("schema_version")
    if version != STATS_SCHEMA_VERSION:
        raise SimulationError(
            f"{path}: stats schema version {version!r} "
            f"(this code reads {STATS_SCHEMA_VERSION})"
        )
    return document
