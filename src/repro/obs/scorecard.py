"""Regression scorecard: diff two stats-export trees against tolerances.

This is the consumer side of :mod:`repro.obs.export` and the engine
behind ``repro report --baseline`` — the CI regression gate.  Given a
baseline directory of ``*.stats.json`` files (committed under
``results/ci_baseline/``) and a freshly exported tree, it:

* pairs files by run identity (same export filename — benchmark, config
  name, seed);
* flattens every numeric leaf of both documents to a dotted path
  (``derived.ipc``, ``result.counters.replayed``, ...) and compares each
  against a per-path tolerance (longest-prefix match, relative drift
  with an absolute floor for near-zero values);
* reports missing/extra runs and fingerprint mismatches (a config or
  timing-model change makes the baseline incomparable — regenerate it)
  as failures.

Wall-clock sections (``profile.*``, ``metrics.*.seconds``) are skipped:
machine noise, not regressions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.obs.export import load_stats_json

#: path prefix -> relative tolerance.  Longest matching prefix wins; the
#: "" entry is the default.  ``None`` skips the subtree entirely.
DEFAULT_TOLERANCES: dict[str, float | None] = {
    "": 0.01,                    # 1% relative drift on any counter
    "derived.ipc": 0.005,        # the headline number is held tighter
    "profile": None,             # wall time: machine noise
    "metrics": 0.01,
    "run": 0.0,                  # identity must match exactly
    "config": 0.0,
    "schema_version": 0.0,
    "timing_model_version": 0.0,
}

#: Values this close to zero are compared absolutely instead.
_ABS_FLOOR = 1e-9


@dataclass
class MetricDrift:
    """One compared leaf: baseline vs current and the verdict."""

    run: str
    path: str
    baseline: float
    current: float
    tolerance: float
    ok: bool

    @property
    def rel_drift(self) -> float:
        scale = max(abs(self.baseline), abs(self.current), _ABS_FLOOR)
        return abs(self.current - self.baseline) / scale


@dataclass
class Scorecard:
    """Aggregate comparison of two stats-export trees."""

    drifts: list[MetricDrift] = field(default_factory=list)
    #: structural problems: missing runs, unreadable files, fingerprint
    #: mismatches — always failures.
    problems: list[str] = field(default_factory=list)
    compared_runs: int = 0
    compared_leaves: int = 0

    @property
    def failures(self) -> list[MetricDrift]:
        return [drift for drift in self.drifts if not drift.ok]

    @property
    def ok(self) -> bool:
        return not self.problems and not self.failures

    @property
    def exit_code(self) -> int:
        return 0 if self.ok else 1


# ----------------------------------------------------------------------
def _flatten(value, prefix: str, leaves: dict[str, float]) -> None:
    if isinstance(value, bool):
        leaves[prefix] = float(value)
    elif isinstance(value, (int, float)):
        leaves[prefix] = float(value)
    elif isinstance(value, dict):
        for key in value:
            _flatten(value[key], f"{prefix}.{key}" if prefix else str(key), leaves)
    elif isinstance(value, (list, tuple)):
        for index, inner in enumerate(value):
            _flatten(inner, f"{prefix}.{index}", leaves)
    elif isinstance(value, str):
        # Strings become presence-keys: a changed config name / workload
        # makes the old key vanish and a new one appear, which the
        # comparison reports as a structural problem.
        leaves[f"{prefix}#str:{value}"] = 0.0


def _tolerance_for(path: str, tolerances: dict[str, float | None]) -> float | None:
    best_key = ""
    best_len = -1
    for key in tolerances:
        if key and not (path == key or path.startswith(key + ".")):
            continue
        if len(key) > best_len:
            best_key, best_len = key, len(key)
    return tolerances[best_key]


def compare_exports(
    baseline: dict,
    current: dict,
    tolerances: dict[str, float | None] | None = None,
    run: str = "",
) -> Scorecard:
    """Compare two loaded export documents leaf by leaf."""
    tolerances = dict(DEFAULT_TOLERANCES if tolerances is None else tolerances)
    card = Scorecard(compared_runs=1)
    if baseline.get("fingerprint") != current.get("fingerprint"):
        card.problems.append(
            f"{run or 'run'}: fingerprint mismatch — config or timing-model "
            "changed; regenerate the baseline"
        )
    base_leaves: dict[str, float] = {}
    cur_leaves: dict[str, float] = {}
    _flatten(baseline, "", base_leaves)
    _flatten(current, "", cur_leaves)
    for path in sorted(base_leaves.keys() | cur_leaves.keys()):
        tolerance = _tolerance_for(path.split("#", 1)[0], tolerances)
        if tolerance is None:
            continue
        if path not in base_leaves or path not in cur_leaves:
            card.problems.append(
                f"{run or 'run'}: {path} present in only one export"
            )
            continue
        base_value = base_leaves[path]
        cur_value = cur_leaves[path]
        card.compared_leaves += 1
        scale = max(abs(base_value), abs(cur_value))
        if scale <= _ABS_FLOOR:
            ok = True
        else:
            ok = abs(cur_value - base_value) / scale <= tolerance
        if not ok or base_value != cur_value:
            card.drifts.append(MetricDrift(
                run=run, path=path, baseline=base_value,
                current=cur_value, tolerance=tolerance, ok=ok,
            ))
    return card


def compare_trees(
    baseline_dir: Path | str,
    current_dir: Path | str,
    tolerances: dict[str, float | None] | None = None,
) -> Scorecard:
    """Compare every ``*.stats.json`` run in two directories."""
    baseline_dir = Path(baseline_dir)
    current_dir = Path(current_dir)
    card = Scorecard()
    base_files = {path.name: path for path in sorted(baseline_dir.glob("*.stats.json"))}
    cur_files = {path.name: path for path in sorted(current_dir.glob("*.stats.json"))}
    if not base_files:
        card.problems.append(f"no *.stats.json baselines under {baseline_dir}")
    for name in sorted(base_files.keys() | cur_files.keys()):
        if name not in cur_files:
            card.problems.append(f"{name}: baseline run missing from current tree")
            continue
        if name not in base_files:
            card.problems.append(f"{name}: current run has no committed baseline")
            continue
        try:
            baseline = load_stats_json(base_files[name])
            current = load_stats_json(cur_files[name])
        except Exception as error:  # noqa: BLE001 - surfaced as a problem row
            card.problems.append(str(error))
            continue
        one = compare_exports(baseline, current, tolerances, run=name)
        card.drifts.extend(one.drifts)
        card.problems.extend(one.problems)
        card.compared_runs += 1
        card.compared_leaves += one.compared_leaves
    return card


def render_scorecard(card: Scorecard, max_rows: int = 40) -> str:
    """ASCII summary: verdict, problems, worst drifts first."""
    lines = [
        f"scorecard: {'PASS' if card.ok else 'FAIL'} — "
        f"{card.compared_runs} runs, {card.compared_leaves} leaves compared, "
        f"{len(card.failures)} over tolerance, {len(card.problems)} problems"
    ]
    for problem in card.problems:
        lines.append(f"  problem: {problem}")
    ranked = sorted(card.drifts, key=lambda d: (d.ok, -d.rel_drift))
    for drift in ranked[:max_rows]:
        verdict = "ok  " if drift.ok else "FAIL"
        lines.append(
            f"  {verdict} {drift.run}:{drift.path} "
            f"{drift.baseline:g} -> {drift.current:g} "
            f"({drift.rel_drift:.3%} vs tol {drift.tolerance:.3%})"
        )
    if len(ranked) > max_rows:
        lines.append(f"  ... {len(ranked) - max_rows} more drifting leaves")
    return "\n".join(lines)
