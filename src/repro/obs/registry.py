"""Metrics registry: named counters, histograms and wall-time timers.

The registry is the collection point for everything a run wants to report
beyond the paper's :class:`~repro.pipeline.stats.SimStats` counters —
component-level counts (selector slots, register-port arbitration, cache
traffic) and stage wall times.  Two rules keep it honest with the
performance budget (``results/speed_baseline.txt``):

* **Guarded publishing** — pipeline components keep counting in bare
  integer attributes exactly as before; a ``publish_metrics(registry)``
  call *after* the run copies them in.  The hot loop never touches a
  metric object, never allocates, and never checks an "enabled" flag.
* **Timers wrap phases, not events** — :class:`StageProfiler` wraps the
  five per-cycle phase methods once at ``run()`` entry when (and only
  when) profiling was requested; a non-profiled run binds the raw methods
  and is byte-for-byte the PR-1 loop.

Metric names are dotted paths (``pipeline.issued``, ``regfile.crossbar_
rejections``); :meth:`MetricsRegistry.as_dict` flattens everything to a
JSON-ready mapping for the stats export.
"""

from __future__ import annotations

from time import perf_counter


class CounterMetric:
    """A monotonically increasing named count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def set(self, value: int) -> None:
        """Overwrite the count (guarded publishing of an external int)."""
        self.value = value

    def as_value(self):
        return self.value


class HistogramMetric:
    """A named bucket -> count distribution (integer buckets)."""

    __slots__ = ("name", "buckets")

    def __init__(self, name: str):
        self.name = name
        self.buckets: dict[int, int] = {}

    def observe(self, bucket: int, count: int = 1) -> None:
        self.buckets[bucket] = self.buckets.get(bucket, 0) + count

    def merge(self, counts) -> None:
        """Fold a ``{bucket: count}`` mapping (e.g. a Counter) in."""
        for bucket, count in counts.items():
            self.observe(int(bucket), count)

    @property
    def total(self) -> int:
        return sum(self.buckets.values())

    def as_value(self):
        return {str(bucket): self.buckets[bucket] for bucket in sorted(self.buckets)}


class TimerMetric:
    """Accumulated wall time (seconds) and call count for one label."""

    __slots__ = ("name", "seconds", "calls", "_start")

    def __init__(self, name: str):
        self.name = name
        self.seconds = 0.0
        self.calls = 0
        self._start = 0.0

    def add(self, seconds: float, calls: int = 1) -> None:
        self.seconds += seconds
        self.calls += calls

    def __enter__(self) -> "TimerMetric":
        self._start = perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.add(perf_counter() - self._start)

    def as_value(self):
        return {"seconds": self.seconds, "calls": self.calls}


class MetricsRegistry:
    """Namespace of metrics, created on first use, exported as one dict."""

    def __init__(self):
        self._metrics: dict[str, object] = {}

    # ------------------------------------------------------------------
    def _get(self, name: str, factory):
        metric = self._metrics.get(name)
        if metric is None:
            metric = factory(name)
            self._metrics[name] = metric
        elif not isinstance(metric, factory):
            raise TypeError(
                f"metric {name!r} already registered as {type(metric).__name__}"
            )
        return metric

    def counter(self, name: str) -> CounterMetric:
        return self._get(name, CounterMetric)

    def histogram(self, name: str) -> HistogramMetric:
        return self._get(name, HistogramMetric)

    def timer(self, name: str) -> TimerMetric:
        return self._get(name, TimerMetric)

    # ------------------------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def get(self, name: str):
        return self._metrics.get(name)

    def as_dict(self) -> dict:
        """Flatten to ``{name: value}`` with deterministic key order."""
        return {name: self._metrics[name].as_value() for name in sorted(self._metrics)}


class StageProfiler:
    """Lightweight wall-time wrapper for the processor's pipeline phases.

    ``wrap(name, fn)`` returns a closure timing every call of *fn* into a
    per-stage accumulator.  The processor only calls it when built with
    ``profile=True``; otherwise the raw bound methods run and the profiler
    is never constructed.
    """

    __slots__ = ("seconds", "calls")

    def __init__(self):
        self.seconds: dict[str, float] = {}
        self.calls: dict[str, int] = {}

    def wrap(self, name: str, fn):
        seconds = self.seconds
        calls = self.calls
        seconds[name] = 0.0
        calls[name] = 0
        clock = perf_counter

        def timed():
            start = clock()
            fn()
            seconds[name] += clock() - start
            calls[name] += 1

        return timed

    def publish(self, registry: MetricsRegistry, prefix: str = "stage") -> None:
        for name in self.seconds:
            registry.timer(f"{prefix}.{name}").add(
                self.seconds[name], self.calls[name]
            )

    def as_dict(self) -> dict:
        """``{stage: {seconds, calls}}`` for the stats export."""
        return {
            name: {"seconds": self.seconds[name], "calls": self.calls[name]}
            for name in sorted(self.seconds)
        }
