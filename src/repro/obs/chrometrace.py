"""Chrome trace-event export of a recorded pipeline schedule.

Converts the per-instruction timing records a
``Processor(record_schedule=True)`` run collects into the Chrome
trace-event JSON format, viewable in ``chrome://tracing`` or
https://ui.perfetto.dev — a zoomable alternative to the ASCII
:func:`~repro.pipeline.pipetrace.render_pipetrace`.

Mapping (1 simulated cycle = 1 microsecond of trace time):

* each dynamic instruction is laid out on a **lane** (trace thread);
  lanes are assigned greedily so overlapping instructions never share
  one — the result reads like a waterfall;
* per instruction, three complete ("X") events: ``sched`` (scheduler
  insert to final issue), ``exec`` (issue to completion) and ``retire``
  (completion to commit), with the opcode/pc/replay details in ``args``;
* each squashed (replayed) issue is an instant ("i") event on the same
  lane, so replay storms are visible at a glance.

Only committed instructions carry full timing (the processor finalizes
trace records at commit); in-flight leftovers are skipped.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import SimulationError


def _committed_records(trace: dict, first_seq: int, count: int | None) -> list:
    seqs = sorted(
        seq for seq, record in trace.items()
        if seq >= first_seq and "insert" in record
    )
    if count is not None:
        seqs = seqs[:count]
    return [(seq, trace[seq]) for seq in seqs]


def _assign_lanes(records: list) -> dict[int, int]:
    """Greedy interval packing: earliest-free lane per instruction."""
    lanes: dict[int, int] = {}
    free_at: list[int] = []  # lane index -> first free cycle
    for seq, record in records:
        start, end = record["insert"], record["commit"]
        for lane, free in enumerate(free_at):
            if free <= start:
                lanes[seq] = lane
                free_at[lane] = end + 1
                break
        else:
            lanes[seq] = len(free_at)
            free_at.append(end + 1)
    return lanes


def export_chrome_trace(
    processor,
    first_seq: int = 0,
    count: int | None = None,
) -> dict:
    """Build the trace-event document for instructions [first_seq, +count)."""
    if processor.trace is None:
        raise SimulationError(
            "chrome trace needs a Processor(record_schedule=True) run"
        )
    records = _committed_records(processor.trace, first_seq, count)
    lanes = _assign_lanes(records)
    events: list[dict] = []
    for lane in sorted(set(lanes.values())):
        events.append({
            "ph": "M", "name": "thread_name", "pid": 0, "tid": lane,
            "args": {"name": f"lane {lane}"},
        })
    for seq, record in records:
        lane = lanes[seq]
        insert = record["insert"]
        commit = record["commit"]
        complete = record.get("complete")
        if complete is None:
            complete = commit  # eliminated NOPs never execute
        issues = record.get("issues", [])
        final_issue = issues[-1] if issues else complete
        label = f"{seq} {record.get('opcode', '?')}"
        args = {
            "seq": seq,
            "pc": record.get("pc"),
            "opcode": record.get("opcode"),
            "replays": record.get("replays", 0),
            "rf_category": record.get("rf_category"),
        }
        phases = (
            ("sched", insert, final_issue, "good"),
            ("exec", final_issue, complete, "bad"),
            ("retire", complete, commit, "terrible"),
        )
        for name, start, end, color in phases:
            if end <= start:
                continue
            events.append({
                "ph": "X", "name": f"{label}:{name}", "cat": name,
                "pid": 0, "tid": lane, "ts": start, "dur": end - start,
                "cname": color, "args": args,
            })
        for squashed in issues[:-1]:
            events.append({
                "ph": "i", "name": f"{label}:squashed-issue", "cat": "replay",
                "pid": 0, "tid": lane, "ts": squashed, "s": "t",
                "args": args,
            })
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "cycle_unit": "1 cycle = 1 us of trace time",
            "instructions": len(records),
        },
    }


def write_chrome_trace(
    processor,
    path: Path | str,
    first_seq: int = 0,
    count: int | None = None,
) -> Path:
    """Export and write the trace JSON; returns the file path."""
    document = export_chrome_trace(processor, first_seq=first_seq, count=count)
    path = Path(path)
    if path.parent != Path(""):
        path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(document, sort_keys=True) + "\n", encoding="utf-8")
    return path
