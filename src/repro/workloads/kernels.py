"""Hand-written HPRISC assembly kernels.

These small programs are real, executable workloads (via the functional
emulator) used by the examples and the execution-driven integration tests.
Each kernel is a function of a size parameter returning assembly source.
"""

from __future__ import annotations

from repro.isa.assembler import Program, assemble


def vector_sum(n: int = 256) -> str:
    """Sum n sequential memory words into r1 (streaming loads)."""
    return f"""
    ; r1 = sum of {n} words starting at 4096
        LDI  r1, 0          ; accumulator
        LDI  r2, 4096       ; pointer
        LDI  r3, {n}        ; remaining
    loop:
        LDQ  r4, 0(r2)
        ADD  r1, r1, r4
        ADD  r2, r2, #8
        SUB  r3, r3, #1
        BNE  r3, loop
        HALT
    """


def fibonacci(n: int = 30) -> str:
    """Iterative Fibonacci; serial dependence chain (low ILP)."""
    return f"""
    ; r1 = fib({n})
        LDI  r1, 1          ; fib(k)
        LDI  r2, 0          ; fib(k-1)
        LDI  r3, {n - 1}    ; remaining iterations
    loop:
        ADD  r4, r1, r2     ; 2-source instruction on the critical path
        MOV  r2, r1
        MOV  r1, r4
        SUB  r3, r3, #1
        BNE  r3, loop
        HALT
    """


def memcpy_words(n: int = 128) -> str:
    """Copy n words from 4096 to 16384 (load/store pairs)."""
    return f"""
        LDI  r2, 4096       ; src
        LDI  r3, 16384      ; dst
        LDI  r4, {n}
    loop:
        LDQ  r5, 0(r2)
        STQ  r5, 0(r3)
        ADD  r2, r2, #8
        ADD  r3, r3, #8
        SUB  r4, r4, #1
        BNE  r4, loop
        HALT
    """


def pointer_chase(n: int = 64, stride: int = 1024) -> str:
    """Build a linked list then traverse it (serialized load chain).

    Each node is one word holding the address of the next node; the
    traversal is the mcf-style pathological case for speculative
    scheduling.
    """
    return f"""
    ; build: node[i] at 8192 + i*{stride} points to node[i+1]
        LDI  r2, 8192
        LDI  r3, {n}
    build:
        ADD  r4, r2, #{stride}
        STQ  r4, 0(r2)
        MOV  r2, r4
        SUB  r3, r3, #1
        BNE  r3, build
        STQ  r31, 0(r2)     ; terminate list with null
    ; traverse
        LDI  r2, 8192
        LDI  r1, 0
    chase:
        LDQ  r2, 0(r2)      ; pointer-chase load
        BEQ  r2, done       ; null terminator reached
        ADD  r1, r1, #1
        BR   chase
    done:
        HALT
    """


def dotproduct(n: int = 128) -> str:
    """Two-source-heavy kernel: elementwise multiply-accumulate."""
    return f"""
        LDI  r1, 0          ; accumulator
        LDI  r2, 4096       ; a[]
        LDI  r3, 32768      ; b[]
        LDI  r4, {n}
    loop:
        LDQ  r5, 0(r2)
        LDQ  r6, 0(r3)
        MUL  r7, r5, r6     ; 2-source multiply
        ADD  r1, r1, r7     ; 2-source accumulate
        ADD  r2, r2, #8
        ADD  r3, r3, #8
        SUB  r4, r4, #1
        BNE  r4, loop
        HALT
    """


def branchy_max(n: int = 200) -> str:
    """Data-dependent branches: running max over a pseudo-random array.

    The array is generated with an in-register LCG so the comparison
    branch is hard to predict.
    """
    return f"""
        LDI  r1, 0          ; current max
        LDI  r2, 12345      ; LCG state
        LDI  r3, {n}
        LDI  r6, 1103515245
        LDI  r7, 12345
    loop:
        MUL  r2, r2, r6
        ADD  r2, r2, r7
        SRL  r4, r2, #16
        AND  r4, r4, #1023  ; value in [0, 1023]
        SUB  r5, r4, r1
        BLT  r5, skip       ; if value < max, skip the update
        MOV  r1, r4
    skip:
        SUB  r3, r3, #1
        BNE  r3, loop
        HALT
    """


def call_tree(depth: int = 6, rounds: int = 20) -> str:
    """Repeated JSR/RET call chains exercising the return address stack."""
    body = [
        "    LDI r1, 0",
        f"    LDI r9, {rounds}",
        "round:",
    ]
    for level in range(depth):
        body += [
            f"    LDI r5, L{level}",
            f"    JSR r{16 + (level % 4)}, (r5)",
        ]
    body += [
        "    SUB r9, r9, #1",
        "    BNE r9, round",
        "    HALT",
    ]
    for level in range(depth):
        body += [
            f"L{level}:",
            "    ADD r1, r1, #1",
            f"    RET (r{16 + (level % 4)})",
        ]
    return "\n".join(body)


def bubble_sort(n: int = 32) -> str:
    """Bubble-sort an LCG-filled array (data-dependent branches + swaps)."""
    return f"""
    ; fill a[0..{n}) at 4096 with LCG values, then bubble sort ascending
        LDI  r2, 4096
        LDI  r3, {n}
        LDI  r4, 12345
        LDI  r6, 1103515245
        LDI  r7, 12345
    fill:
        MUL  r4, r4, r6
        ADD  r4, r4, r7
        SRL  r5, r4, #13
        AND  r5, r5, #8191
        STQ  r5, 0(r2)
        ADD  r2, r2, #8
        SUB  r3, r3, #1
        BNE  r3, fill
    ; outer loop: i = n-1 .. 1
        LDI  r10, {n - 1}
    outer:
        LDI  r2, 4096       ; p = &a[0]
        MOV  r11, r10       ; j = i
    inner:
        LDQ  r12, 0(r2)
        LDQ  r13, 8(r2)
        SUB  r14, r13, r12
        BGE  r14, noswap    ; already ordered
        STQ  r13, 0(r2)
        STQ  r12, 8(r2)
    noswap:
        ADD  r2, r2, #8
        SUB  r11, r11, #1
        BNE  r11, inner
        SUB  r10, r10, #1
        BNE  r10, outer
        HALT
    """


def matmul(n: int = 8) -> str:
    """Naive n x n integer matrix multiply (nested loops, MUL+ADD chains).

    A at 4096, B at 16384, C at 28672; element (i,j) of each is at
    base + (i*n + j)*8.
    """
    return f"""
        LDI  r10, 0          ; i
    iloop:
        LDI  r11, 0          ; j
    jloop:
        LDI  r1, 0           ; acc
        LDI  r12, 0          ; k
    kloop:
        ; r2 = &A[i*n + k]
        MUL  r3, r10, #{n}
        ADD  r3, r3, r12
        SLL  r3, r3, #3
        ADD  r2, r3, #4096
        LDQ  r4, 0(r2)
        ; r5 = &B[k*n + j]
        MUL  r6, r12, #{n}
        ADD  r6, r6, r11
        SLL  r6, r6, #3
        ADD  r5, r6, #16384
        LDQ  r7, 0(r5)
        MUL  r8, r4, r7
        ADD  r1, r1, r8
        ADD  r12, r12, #1
        CMPLT r9, r12, #{n}
        BNE  r9, kloop
        ; C[i*n + j] = acc
        MUL  r3, r10, #{n}
        ADD  r3, r3, r11
        SLL  r3, r3, #3
        ADD  r2, r3, #28672
        STQ  r1, 0(r2)
        ADD  r11, r11, #1
        CMPLT r9, r11, #{n}
        BNE  r9, jloop
        ADD  r10, r10, #1
        CMPLT r9, r10, #{n}
        BNE  r9, iloop
        HALT
    """


def hash_probe(n: int = 200, table_bits: int = 10) -> str:
    """Hash-table probing: LCG keys hashed into a table (random access)."""
    mask = (1 << table_bits) - 1
    return f"""
    ; count LCG keys whose table slot is non-zero (cold table: all zero),
    ; writing each probed slot afterwards (warming it for later keys)
        LDI  r1, 0           ; hits
        LDI  r2, 98765       ; LCG state
        LDI  r3, {n}
        LDI  r6, 1103515245
        LDI  r7, 12345
        LDI  r8, 65536       ; table base
    probe:
        MUL  r2, r2, r6
        ADD  r2, r2, r7
        SRL  r4, r2, #9
        AND  r4, r4, #{mask} ; slot index
        SLL  r4, r4, #3
        ADD  r4, r4, r8      ; slot address
        LDQ  r5, 0(r4)
        BEQ  r5, miss
        ADD  r1, r1, #1
    miss:
        STQ  r2, 0(r4)       ; insert key
        SUB  r3, r3, #1
        BNE  r3, probe
        HALT
    """


def memscan(n: int = 256, needle: int = 77) -> str:
    """Scan memory words for a sentinel value (streaming + early exit)."""
    return f"""
    ; plant the needle at the end, then scan for it
        LDI  r2, 4096
        LDI  r3, {needle}
        STQ  r3, {8 * (n - 1)}(r2)
        LDI  r1, 0           ; index
    scan:
        LDQ  r4, 0(r2)
        SUB  r5, r4, r3
        BEQ  r5, found
        ADD  r2, r2, #8
        ADD  r1, r1, #1
        BR   scan
    found:
        HALT
    """


def sieve(n: int = 200) -> str:
    """Sieve of Eratosthenes up to n (nested loops, strided stores).

    r1 ends with the prime count; the marking loop's stride grows with
    each prime, mixing streaming and scattered store traffic.
    """
    return f"""
    ; flags[v] at 4096 + v*8, 1 = composite; count primes in [2, {n})
        LDI  r2, 4096
        LDI  r3, {n}
    init:
        STQ  r31, 0(r2)
        ADD  r2, r2, #8
        SUB  r3, r3, #1
        BNE  r3, init
        LDI  r10, 2          ; p
    ploop:
        MUL  r4, r10, r10    ; p*p
        CMPLT r5, r4, #{n}
        BEQ  r5, count       ; p*p >= n: sieving done
        SLL  r6, r10, #3
        ADD  r6, r6, #4096
        LDQ  r7, 0(r6)
        BNE  r7, nextp       ; p already composite
        MOV  r8, r4          ; m = p*p
        LDI  r9, 1
    mark:
        SLL  r6, r8, #3
        ADD  r6, r6, #4096
        STQ  r9, 0(r6)
        ADD  r8, r8, r10
        CMPLT r5, r8, #{n}
        BNE  r5, mark
    nextp:
        ADD  r10, r10, #1
        BR   ploop
    count:
        LDI  r1, 0
        LDI  r10, 2
        LDI  r3, {n - 2}
    cloop:
        SLL  r6, r10, #3
        ADD  r6, r6, #4096
        LDQ  r7, 0(r6)
        BNE  r7, notp
        ADD  r1, r1, #1
    notp:
        ADD  r10, r10, #1
        SUB  r3, r3, #1
        BNE  r3, cloop
        HALT
    """


def strsearch(n: int = 256) -> str:
    """Naive substring search over an LCG-filled word array.

    The 4-word pattern is copied from near the end of the haystack, so the
    inner compare loop exits on a data-dependent mismatch at almost every
    candidate position until the final match.
    """
    return f"""
    ; fill haystack[0..{n}) at 4096, take pattern = haystack[{n - 5}..{n - 1}),
    ; then scan candidate positions until the 4-word window matches
        LDI  r2, 4096
        LDI  r3, {n}
        LDI  r4, 424242
        LDI  r6, 1103515245
        LDI  r7, 12345
    fill:
        MUL  r4, r4, r6
        ADD  r4, r4, r7
        SRL  r5, r4, #11
        AND  r5, r5, #255
        STQ  r5, 0(r2)
        ADD  r2, r2, #8
        SUB  r3, r3, #1
        BNE  r3, fill
        LDI  r2, {4096 + (n - 5) * 8}
        LDI  r3, 65536       ; pattern buffer
        LDI  r8, 4
    copy:
        LDQ  r5, 0(r2)
        STQ  r5, 0(r3)
        ADD  r2, r2, #8
        ADD  r3, r3, #8
        SUB  r8, r8, #1
        BNE  r8, copy
        LDI  r1, 0           ; candidate position
        LDI  r2, 4096
        LDI  r10, {n - 4}    ; candidates remaining
    outer:
        LDI  r3, 65536
        MOV  r11, r2
        LDI  r8, 4
    inner:
        LDQ  r5, 0(r11)
        LDQ  r6, 0(r3)
        SUB  r7, r5, r6
        BNE  r7, next        ; mismatch: try next position
        ADD  r11, r11, #8
        ADD  r3, r3, #8
        SUB  r8, r8, #1
        BNE  r8, inner
        BR   found           ; all 4 words matched
    next:
        ADD  r1, r1, #1
        ADD  r2, r2, #8
        SUB  r10, r10, #1
        BNE  r10, outer
    found:
        HALT
    """


#: Registry of kernels: name -> (source factory, default kwargs).
KERNELS = {
    "vector_sum": vector_sum,
    "fibonacci": fibonacci,
    "memcpy": memcpy_words,
    "pointer_chase": pointer_chase,
    "dotproduct": dotproduct,
    "branchy_max": branchy_max,
    "call_tree": call_tree,
    "bubble_sort": bubble_sort,
    "matmul": matmul,
    "hash_probe": hash_probe,
    "memscan": memscan,
    "sieve": sieve,
    "strsearch": strsearch,
}


def kernel_source(name: str, **kwargs) -> str:
    """Assembly source of the named kernel."""
    return KERNELS[name](**kwargs)


def kernel_program(name: str, **kwargs) -> Program:
    """Assembled :class:`Program` of the named kernel."""
    return assemble(kernel_source(name, **kwargs))
