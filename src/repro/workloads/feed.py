"""Stream adapters: turn instruction sources into DynOp streams.

A *stream* is any iterator of :class:`~repro.workloads.trace.DynOp` in
program (commit) order.  The timing simulator pulls from it at fetch time;
branch mispredictions are modelled as fetch-redirect bubbles, so the stream
only ever contains correct-path instructions (see DESIGN.md).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.isa.assembler import Program
from repro.isa.emulator import Emulator
from repro.workloads.trace import DynOp, dynop_from_instruction


class EmulatorFeed:
    """Execution-driven stream: functional emulation of a real program.

    Iterating yields one :class:`DynOp` per architecturally executed
    instruction, until the program halts.  The ``HALT`` instruction itself is
    not yielded (it is an emulator artifact, not a pipeline instruction).
    """

    def __init__(self, program: Program, entry: int = 0, name: str = "program"):
        self.program = program
        self.entry = entry
        self.name = name

    def __iter__(self) -> Iterator[DynOp]:
        emulator = Emulator(self.program, entry=self.entry)
        seq = 0
        while not emulator.halted:
            record = emulator.step()
            inst = record.instruction
            if inst.is_halt:
                return
            # Architectural values, read back right after the step: they
            # feed the lockstep differential checker (repro.verify) and are
            # invisible to the timing model.
            dest_value = (
                emulator.read_reg(inst.dest) if inst.writes_register else None
            )
            store_value = (
                emulator.read_mem(record.mem_addr) if inst.is_store else None
            )
            yield dynop_from_instruction(
                seq=seq,
                pc=record.pc,
                inst=inst,
                mem_addr=record.mem_addr,
                taken=record.taken,
                next_pc=record.next_pc,
                dest_value=dest_value,
                store_value=store_value,
            )
            seq += 1


def collect_stream(stream: Iterable[DynOp], limit: int) -> list[DynOp]:
    """Materialize up to *limit* ops from *stream*."""
    return list(itertools.islice(iter(stream), limit))


def decode_columns(ops: list[DynOp]) -> dict:
    """Decode static per-instruction facts into flat parallel columns.

    The vector backend indexes every per-instruction array by the dense
    instruction tag, which equals the op's position in the stream — hence
    the density check.  Booleans are stored as 0/1 ints so the hot loop
    avoids attribute lookups and bool boxing; ``deps`` keeps references to
    the original ``sched_deps`` tuples.
    """
    for i, op in enumerate(ops):
        if op.seq != i:
            raise ValueError(
                "decode_columns needs dense program-order seq numbers "
                f"(got {op.seq} at position {i})"
            )
    return {
        "ocls": [op.op_class.idx for op in ops],
        "pc": [op.pc for op in ops],
        "ctrl": [1 if op.is_control else 0 for op in ops],
        "load": [1 if op.is_load else 0 for op in ops],
        "store": [1 if op.is_store else 0 for op in ops],
        "nop": [1 if op.is_eliminated_nop else 0 for op in ops],
        "dest": [op.dest for op in ops],
        "deps": [op.sched_deps for op in ops],
        "addr": [op.mem_addr for op in ops],
    }


class ReplayFeed:
    """Reusable pre-materialized stream with a decode cache.

    Wraps a list of :class:`DynOp` in program order.  Iterating replays the
    list, so any backend accepts it like a regular stream; the vector
    backend additionally recognizes the materialized ``ops`` list and the
    :meth:`columns` decode cache, making this the "decode once, simulate
    many" feed for benchmarks, sweeps and serve traffic.

    ``pc_address`` must be forwarded from the source feed when that feed
    defines one (the instruction-cache access pattern depends on it).
    """

    def __init__(self, ops: Iterable[DynOp], name: str = "replay", pc_address=None):
        self.ops = list(ops)
        self.name = name
        if pc_address is not None:
            self.pc_address = pc_address
        self._columns: dict | None = None

    @classmethod
    def from_stream(
        cls, stream: Iterable[DynOp], limit: int | None = None
    ) -> "ReplayFeed":
        ops = (
            list(iter(stream))
            if limit is None
            else collect_stream(stream, limit)
        )
        return cls(
            ops,
            name=getattr(stream, "name", "replay"),
            pc_address=getattr(stream, "pc_address", None),
        )

    def __iter__(self) -> Iterator[DynOp]:
        return iter(self.ops)

    def __len__(self) -> int:
        return len(self.ops)

    def columns(self) -> dict:
        """Flat decoded columns (see :func:`decode_columns`), cached."""
        if self._columns is None:
            self._columns = decode_columns(self.ops)
        return self._columns


@dataclass
class StreamStats:
    """Machine-independent stream characterization (Figures 2 and 3).

    Categories follow the paper exactly:

    * ``stores`` are counted separately (they are 2-source-format but are
      handled as address generation + data move);
    * ``nop2`` are 2-source-format nops the decoder eliminates;
    * of the remaining 2-source-format instructions, ``two_source`` have two
      unique non-zero register sources, the rest collapse to fewer.
    """

    total: int = 0
    stores: int = 0
    eliminated_nops: int = 0
    two_source_format: int = 0      # non-store, non-nop 2-source-format
    two_source: int = 0             # ...of which 2 unique non-zero sources
    one_effective_source: int = 0   # ...zero-reg or duplicate demotions
    other: int = 0                  # 0/1-source formats

    @classmethod
    def from_stream(cls, stream: Iterable[DynOp], limit: int | None = None) -> "StreamStats":
        stats = cls()
        iterator = iter(stream) if limit is None else itertools.islice(iter(stream), limit)
        for op in iterator:
            stats.add(op)
        return stats

    def add(self, op: DynOp) -> None:
        self.total += 1
        if op.is_store:
            self.stores += 1
            return
        if op.is_eliminated_nop:
            if op.is_two_source_format:
                self.eliminated_nops += 1
            else:
                self.other += 1
            return
        if op.is_two_source_format:
            self.two_source_format += 1
            if op.is_two_source:
                self.two_source += 1
            else:
                self.one_effective_source += 1
        else:
            self.other += 1

    # ------------------------------------------------------------------
    def _frac(self, count: int) -> float:
        return count / self.total if self.total else 0.0

    @property
    def frac_two_source_format(self) -> float:
        """Figure 2: non-store 2-source-format fraction (nops included)."""
        return self._frac(self.two_source_format + self.eliminated_nops)

    @property
    def frac_stores(self) -> float:
        return self._frac(self.stores)

    @property
    def frac_two_source(self) -> float:
        """Figure 3 bottom bars: fraction with 2 unique non-zero sources."""
        return self._frac(self.two_source)

    @property
    def frac_eliminated_nops(self) -> float:
        return self._frac(self.eliminated_nops)
