"""Synthetic SPEC CINT2000 benchmark clones.

A :class:`SyntheticWorkload` builds a *static program* — a well-nested
skeleton of segments walked by one outer loop — and then emits an endless,
deterministic stream of :class:`~repro.workloads.trace.DynOp` records.

Skeleton structure (planned first, then emitted):

* **loop segments** — 1..3 blocks; the last block ends with a backward
  branch to the body start, iterating with per-entry Gaussian trip counts;
  intermediate blocks end with forward if-branches that *stay inside the
  body* (skip to the loop-end block);
* **hot/cold pairs** — a hot block whose if-branch usually skips a cold
  block (the usually-taken forward branch of real code);
* **jump segments** — register-indirect JMPs, mostly to the next segment
  with occasional rotation (BTB pressure).

Because the outer loop passes through *every* segment, dynamic coverage is
broad and the measured distributions are stable across seeds, while loop
trip counts still weight hot code realistically.

Design notes for fidelity to the paper's measurements:

* static dataflow is fixed per PC, so last-arriving-operand behaviour has
  the per-PC stability Table 3 reports;
* the long-lived/recent source pattern of 2-source ops is dealt *jointly*
  (a per-operand dither would anti-correlate the sources and wipe out the
  2-pending population of Figures 4/6);
* per-instruction composition decisions use error-diffusion dealers so
  loop-weighted execution preserves the target mix;
* strided memory ops walk small hot regions and wrap (temporal locality);
  random ops address the profile's working set; pointer-chase loads form
  load-to-load address chains (the mcf pattern).
"""

from __future__ import annotations

import random
import zlib
from typing import Iterator

from repro.isa.opcodes import OPCODE_BY_NAME, OpClass
from repro.isa.registers import FP_REG_BASE, R31
from repro.workloads.profiles import BenchmarkProfile
from repro.workloads.trace import DynOp

# Register pools (architectural), disjoint by role:
#   r1..r19  : integer ALU/load results
#   r20..r23 : pointer-chase chain registers
#   r24..r27 : memory base registers / long-lived values (live-in)
#   f1..f19  : FP results;  f20..f23 : long-lived FP values
_INT_POOL = tuple(range(1, 20))
_CHASE_POOL = tuple(range(20, 24))
_BASE_POOL = tuple(range(24, 28))
_FP_POOL = tuple(range(FP_REG_BASE + 1, FP_REG_BASE + 20))
_FP_LONG_POOL = tuple(range(FP_REG_BASE + 20, FP_REG_BASE + 24))

#: Base byte address of the synthetic data working set.
_DATA_BASE = 0x1000_0000

_LCG_MULT = 6364136223846793005
_LCG_INC = 1442695040888963407
_MASK64 = (1 << 64) - 1


class _Dither:
    """Error-diffusion Bernoulli: True at exactly rate *p* in the long run,
    with occurrences spread evenly through the static program."""

    __slots__ = ("p", "acc")

    def __init__(self, p: float):
        self.p = p
        self.acc = 0.5

    def step(self) -> bool:
        self.acc += self.p
        if self.acc >= 1.0:
            self.acc -= 1.0
            return True
        return False


class _KindDealer:
    """Deficit-round-robin dealer over categories with fixed weights."""

    __slots__ = ("kinds", "weights", "acc")

    def __init__(self, kinds: tuple[str, ...], weights: tuple[float, ...]):
        total = sum(weights)
        self.kinds = kinds
        self.weights = tuple(w / total for w in weights)
        self.acc = [0.0] * len(kinds)

    def deal(self) -> str:
        best = 0
        for index, weight in enumerate(self.weights):
            self.acc[index] += weight
            if self.acc[index] > self.acc[best]:
                best = index
        self.acc[best] -= 1.0
        return self.kinds[best]


class _StaticOp:
    """One static pseudo-instruction of the synthetic program."""

    __slots__ = (
        "pc",
        "opcode",
        "op_class",
        "dest",
        "srcs",
        "sched_deps",
        "store_data_reg",
        "is_two_source_format",
        "is_eliminated_nop",
        "static_target",
        "mem_mode",
        "mem_offset",
        "mem_stride",
        "mem_region",
        "branch_kind",
        "branch_bias",
        "trip_mean",
        "jump_targets",
        "jump_primary_weight",
    )

    def __init__(self, pc: int, opcode: str, op_class: OpClass):
        self.pc = pc
        self.opcode = opcode
        self.op_class = op_class
        self.dest = None
        self.srcs = ()
        self.sched_deps = ()
        self.store_data_reg = None
        self.is_two_source_format = False
        self.is_eliminated_nop = False
        self.static_target = None
        self.mem_mode = None
        self.mem_offset = 0
        self.mem_stride = 8
        self.mem_region = 64
        self.branch_kind = None
        self.branch_bias = 0.5
        self.trip_mean = 0.0
        self.jump_targets = ()
        self.jump_primary_weight = 0.8


class SyntheticWorkload:
    """Deterministic synthetic benchmark built from a profile.

    Iterating yields an endless DynOp stream; bound it with the simulator's
    instruction budget or :func:`~repro.workloads.feed.collect_stream`.
    """

    def __init__(self, profile: BenchmarkProfile, seed: int = 12345):
        self.profile = profile
        self.seed = seed
        self.name = profile.name
        self._ops: list[_StaticOp] = []
        # zlib.crc32 (not hash()) so streams are identical across processes.
        name_salt = zlib.crc32(profile.name.encode())
        self._init_dealers()
        self._build(random.Random((seed * 1_000_003) ^ name_salt))
        spacing = max(4, profile.code_footprint_bytes // max(1, len(self._ops)))
        self._pc_spacing = spacing & ~3 or 4

    # ==================================================================
    # Construction.
    # ==================================================================
    def _init_dealers(self) -> None:
        profile = self.profile
        q = profile.frac_long_lived_src
        self._dithers = {
            "two_src": _Dither(profile.frac_alu_two_src_format),
            "demoted": _Dither(profile.frac_demoted),
            "fp": _Dither(profile.frac_fp),
            "chase": _Dither(profile.frac_pointer_chase),
            "random_mem": _Dither(profile.frac_random_access),
            "load_src": _Dither(profile.load_src_bias),
            "noisy_branch": _Dither(profile.frac_noisy_branches),
        }
        # Operand patterns of 2-source ops are dealt jointly: a per-operand
        # dither would anti-correlate the sources and erase the 2-pending
        # population the paper measures in Figures 4 and 6.
        self._pair_dealer = _KindDealer(
            ("both", "left", "right", "none"),
            (q * q, q * (1 - q), (1 - q) * q, (1 - q) * (1 - q)),
        )
        self._single_dealer = _KindDealer(("long", "recent"), (q, 1 - q))
        self._recent_loads: list[int] = []

    def _build(self, rng: random.Random) -> None:
        profile = self.profile
        ctl_frac = profile.frac_branch + profile.frac_jump
        self._body_per_block = max(1, round((1.0 - ctl_frac) / max(ctl_frac, 1e-6)))
        load_w = profile.frac_load
        store_w = profile.frac_store
        nop_w = profile.frac_nop2
        alu_w = max(1e-9, 1.0 - ctl_frac - load_w - store_w - nop_w)
        self._kind_dealer = _KindDealer(
            ("load", "store", "nop2", "alu"), (load_w, store_w, nop_w, alu_w)
        )
        self._recent_int: list[int] = list(_BASE_POOL)
        self._recent_fp: list[int] = list(_FP_LONG_POOL)

        plan = self._plan_segments(rng)
        block_starts: dict[int, int] = {}
        terminators: list[tuple[_StaticOp, str, int, int]] = []
        block_id = 0
        for segment in plan:
            for position in range(segment["blocks"]):
                block_starts[block_id] = len(self._ops)
                self._emit_block_body(rng)
                terminator, kind = self._emit_terminator(rng, segment, position)
                terminators.append((terminator, kind, block_id, segment["blocks"] - 1 - position))
                block_id += 1
        self._finalize_targets(rng, block_starts, terminators, block_id)

    def _plan_segments(self, rng: random.Random) -> list[dict]:
        """Lay out the segment skeleton (loops, hot/cold pairs, jumps)."""
        profile = self.profile
        plan: list[dict] = []
        blocks_left = profile.num_blocks
        jump_share = profile.frac_jump / max(
            profile.frac_branch + profile.frac_jump, 1e-9
        )
        while blocks_left > 0:
            roll = rng.random()
            if roll < profile.frac_loop_branches and blocks_left >= 1:
                body = min(blocks_left, rng.randint(1, 3))
                plan.append({"kind": "loop", "blocks": body})
                blocks_left -= body
            elif jump_share and roll < profile.frac_loop_branches + jump_share:
                plan.append({"kind": "jump", "blocks": 1})
                blocks_left -= 1
            elif blocks_left >= 2:
                plan.append({"kind": "pair", "blocks": 2})
                blocks_left -= 2
            else:
                plan.append({"kind": "jump" if jump_share else "pair", "blocks": 1})
                blocks_left -= 1
        return plan

    # ------------------------------------------------------------------
    # Block bodies.
    # ------------------------------------------------------------------
    def _emit_block_body(self, rng: random.Random) -> None:
        size = max(1, round(rng.gauss(self._body_per_block, self._body_per_block * 0.3)))
        for _ in range(size):
            kind = self._kind_dealer.deal()
            if kind == "load":
                self._emit_load(rng)
            elif kind == "store":
                self._emit_store(rng)
            elif kind == "nop2":
                self._emit_nop2(rng)
            else:
                self._emit_alu(rng)

    def _note_dest(self, op: _StaticOp) -> None:
        if op.dest is None or op.dest in _CHASE_POOL:
            return
        recent = self._recent_fp if op.dest >= FP_REG_BASE else self._recent_int
        recent.append(op.dest)
        if len(recent) > 64:
            del recent[:32]

    def _draw_distance(self, rng: random.Random) -> int:
        distance = 1
        while rng.random() > self.profile.dep_distance_p and distance < 24:
            distance += 1
        return distance

    def _pick_long(self, recent: list[int]) -> int:
        # Rotate through the long-lived pool so different static ops bind
        # to different (but fixed) live-in registers.
        if recent is self._recent_fp:
            return _FP_LONG_POOL[len(self._ops) % len(_FP_LONG_POOL)]
        return _BASE_POOL[len(self._ops) % len(_BASE_POOL)]

    def _pick_recent(self, rng: random.Random, recent: list[int]) -> int:
        return recent[-min(self._draw_distance(rng), len(recent))]

    def _pick_src(self, rng: random.Random, recent: list[int]) -> int:
        if self._single_dealer.deal() == "long":
            return self._pick_long(recent)
        return self._pick_recent(rng, recent)

    # ------------------------------------------------------------------
    def _emit_load(self, rng: random.Random) -> None:
        op = _StaticOp(len(self._ops), "LDQ", OpClass.LOAD)
        if self._dithers["chase"].step():
            base = _CHASE_POOL[rng.randrange(len(_CHASE_POOL))]
            # Chain: this load's result is the next chase load's base.
            op.dest = _CHASE_POOL[(_CHASE_POOL.index(base) + 1) % len(_CHASE_POOL)]
            op.srcs = (base,)
            op.sched_deps = (base,)
            op.mem_mode = "chase"
        else:
            base = rng.choice(_BASE_POOL)
            op.dest = _INT_POOL[rng.randrange(len(_INT_POOL))]
            op.srcs = (base,)
            op.sched_deps = (base,)
            self._assign_mem_behaviour(op, rng)
            self._recent_loads.append(op.dest)
            if len(self._recent_loads) > 8:
                del self._recent_loads[0]
        self._ops.append(op)
        self._note_dest(op)

    def _emit_store(self, rng: random.Random) -> None:
        op = _StaticOp(len(self._ops), "STQ", OpClass.STORE)
        data = self._pick_src(rng, self._recent_int)
        base = rng.choice(_BASE_POOL)
        op.srcs = (data, base)
        op.sched_deps = (base,)
        op.store_data_reg = data
        op.is_two_source_format = True
        self._assign_mem_behaviour(op, rng)
        self._ops.append(op)

    def _emit_nop2(self, rng: random.Random) -> None:
        op = _StaticOp(len(self._ops), "NOP2", OpClass.NOP)
        op.srcs = (rng.choice(_INT_POOL), rng.choice(_INT_POOL))
        op.is_two_source_format = True
        op.is_eliminated_nop = True
        op.dest = R31
        self._ops.append(op)

    def _assign_mem_behaviour(self, op: _StaticOp, rng: random.Random) -> None:
        if self._dithers["random_mem"].step():
            op.mem_mode = "random"
        else:
            # Strided ops walk a small hot region and wrap: miss on the
            # first pass, hit afterwards (temporal locality of real code).
            op.mem_mode = "stride"
            op.mem_stride = self.profile.stride_bytes
            op.mem_region = 1 << rng.randint(3, 5)  # 8..32 elements
        op.mem_offset = rng.randrange(0, max(8, self.profile.working_set_bytes), 8)

    # ------------------------------------------------------------------
    def _emit_alu(self, rng: random.Random) -> None:
        profile = self.profile
        is_fp = self._dithers["fp"].step()
        if is_fp:
            pool, recent = _FP_POOL, self._recent_fp
            two_src_names = ("ADDF", "SUBF", "MULF")
            one_src_name = "MOVF"
        else:
            pool, recent = _INT_POOL, self._recent_int
            roll = rng.random()
            if roll < profile.frac_div:
                two_src_names = ("DIV",)
            elif roll < profile.frac_div + profile.frac_mul:
                two_src_names = ("MUL",)
            else:
                two_src_names = ("ADD", "SUB", "AND", "OR", "XOR")
            one_src_name = "ADD"
        dest = pool[rng.randrange(len(pool))]
        if self._dithers["two_src"].step():
            name = rng.choice(two_src_names)
            op = _StaticOp(len(self._ops), name, OPCODE_BY_NAME[name].op_class)
            op.is_two_source_format = True
            op.dest = dest
            if self._dithers["demoted"].step():
                src = self._pick_src(rng, recent)
                if rng.random() < 0.5:
                    op.srcs = (src, src)  # duplicate operand
                else:
                    zero = R31 if pool is _INT_POOL else FP_REG_BASE + 31
                    op.srcs = (src, zero) if rng.random() < 0.5 else (zero, src)
                op.sched_deps = (src,)
            else:
                src_a, src_b = self._two_sources(rng, recent)
                op.srcs = (src_a, src_b)
                op.sched_deps = (src_a,) if src_a == src_b else (src_a, src_b)
        else:
            op = _StaticOp(len(self._ops), one_src_name, OPCODE_BY_NAME[one_src_name].op_class)
            op.dest = dest
            if not is_fp and rng.random() < 0.12:
                op.opcode = "LDI"  # zero-source immediate
            else:
                src = self._pick_src(rng, recent)
                op.srcs = (src,)
                op.sched_deps = (src,)
        self._ops.append(op)
        self._note_dest(op)

    def _two_sources(self, rng: random.Random, recent: list[int]) -> tuple[int, int]:
        """Draw both sources of a 2-source op (see module docstring)."""
        pattern = self._pair_dealer.deal()
        is_int_pool = recent is self._recent_int

        def draw(long_lived: bool) -> int:
            if long_lived:
                return self._pick_long(recent)
            if is_int_pool and self._recent_loads and self._dithers["load_src"].step():
                depth = rng.randrange(min(4, len(self._recent_loads)))
                return self._recent_loads[-1 - depth]
            return self._pick_recent(rng, recent)

        a_long = pattern in ("both", "left")
        b_long = pattern in ("both", "right")
        src_a = draw(a_long)
        src_b = draw(b_long)
        for _ in range(4):
            if src_b != src_a:
                break
            src_b = draw(b_long)
        # The recent (or more recently produced) source is likelier to
        # arrive last; steer it left with the Table 3 bias knob.
        rank_a = -1 if a_long else _last_index(recent, src_a)
        rank_b = -1 if b_long else _last_index(recent, src_b)
        later, earlier = (src_a, src_b) if rank_a >= rank_b else (src_b, src_a)
        if rng.random() < self.profile.left_long_dep_bias:
            return later, earlier
        return earlier, later

    # ------------------------------------------------------------------
    # Terminators and target resolution.
    # ------------------------------------------------------------------
    def _emit_terminator(
        self, rng: random.Random, segment: dict, position: int
    ) -> tuple[_StaticOp, str]:
        """Emit a block terminator; its target is resolved later."""
        profile = self.profile
        pc = len(self._ops)
        last_in_segment = position == segment["blocks"] - 1
        if segment["kind"] == "jump" and last_in_segment:
            op = _StaticOp(pc, "JMP", OpClass.JUMP)
            base = rng.choice(_BASE_POOL)
            op.srcs = (base,)
            op.sched_deps = (base,)
            op.branch_kind = "jump"
            self._ops.append(op)
            return op, "jump"
        name = rng.choice(("BEQ", "BNE", "BLT", "BGE"))
        op = _StaticOp(pc, name, OpClass.BRANCH)
        src = rng.choice(_INT_POOL)
        op.srcs = (src,)
        op.sched_deps = (src,)
        if segment["kind"] == "loop" and last_in_segment:
            op.branch_kind = "loop"
            op.trip_mean = max(
                3.0, rng.gauss(profile.loop_trip_mean, profile.loop_trip_mean * 0.3)
            )
            self._ops.append(op)
            return op, "loop"
        op.branch_kind = "if"
        if self._dithers["noisy_branch"].step():
            op.branch_bias = rng.uniform(0.55, 0.75)
        else:
            op.branch_bias = min(0.98, profile.branch_bias + rng.uniform(0.0, 0.08))
        self._ops.append(op)
        kind = "if_in_loop" if segment["kind"] == "loop" else "if_pair"
        return op, kind

    def _finalize_targets(self, rng, block_starts, terminators, num_blocks) -> None:
        """Resolve every terminator's target against the planned skeleton."""
        for op, kind, block_id, blocks_to_segment_end in terminators:
            next_block = (block_id + 1) % num_blocks
            if kind == "loop":
                # Back to the body start: the loop's body spans this block
                # and the preceding same-segment 'if_in_loop' blocks.
                body_start = block_id - self._loop_body_len(terminators, block_id) + 1
                op.static_target = block_starts[max(0, body_start)]
            elif kind == "if_in_loop":
                # Skip forward to the loop-end block, staying in the body.
                target_block = min(block_id + blocks_to_segment_end, num_blocks - 1)
                op.static_target = block_starts[target_block]
            elif kind == "if_pair":
                if blocks_to_segment_end >= 1:
                    # Hot block: taken skips the cold sibling.
                    op.static_target = block_starts[(block_id + 2) % num_blocks]
                else:
                    # Cold block (or segment tail): continue to next block.
                    op.static_target = block_starts[next_block]
            elif kind == "jump":
                extra = rng.sample(range(num_blocks), min(3, num_blocks))
                targets = [block_starts[next_block]] + [
                    block_starts[b] for b in extra if b != next_block
                ][:2]
                op.jump_targets = tuple(targets)
        # The very last terminator wraps to the program start regardless.
        last_op = terminators[-1][0]
        if last_op.branch_kind == "loop":
            pass  # exits fall through to index 0 via the walker's wrap
        elif last_op.branch_kind == "jump":
            pass
        else:
            last_op.branch_kind = "if"

    @staticmethod
    def _loop_body_len(terminators, block_id) -> int:
        """Number of body blocks of the loop ending at *block_id*."""
        length = 1
        index = block_id - 1
        # Walk backwards over same-segment 'if_in_loop' terminators.
        for term, kind, bid, _ in reversed(terminators):
            if bid != index:
                continue
            if kind == "if_in_loop":
                length += 1
                index -= 1
            else:
                break
        return length

    # ==================================================================
    # Public interface.
    # ==================================================================
    @property
    def static_size(self) -> int:
        """Number of static instructions in the synthetic program."""
        return len(self._ops)

    def pc_address(self, pc: int) -> int:
        """Byte address of static instruction *pc* (I-cache modelling)."""
        return pc * self._pc_spacing

    def __iter__(self) -> Iterator[DynOp]:
        return self.stream()

    def stream(self) -> Iterator[DynOp]:
        """Yield an endless, deterministic DynOp stream."""
        rng = random.Random(self.seed ^ 0x5EED)
        ops = self._ops
        num_ops = len(ops)
        seq = 0
        pc = 0
        loop_counts: dict[int, int] = {}
        access_counts: dict[int, int] = {}
        lcg_state: dict[int, int] = {}
        jump_rr: dict[int, int] = {}
        ws = max(8, self.profile.working_set_bytes)
        while True:
            op = ops[pc]
            mem_addr = None
            taken = False
            next_pc = pc + 1 if pc + 1 < num_ops else 0
            if op.mem_mode is not None:
                mem_addr = self._mem_address(op, access_counts, lcg_state, ws)
            if op.branch_kind is not None:
                taken, next_pc = self._control_outcome(
                    op, pc, rng, loop_counts, jump_rr, num_ops
                )
            yield DynOp(
                seq=seq,
                pc=pc,
                opcode=op.opcode,
                op_class=op.op_class,
                dest=op.dest if op.dest != R31 else None,
                srcs=op.srcs,
                sched_deps=op.sched_deps,
                store_data_reg=op.store_data_reg,
                mem_addr=mem_addr,
                taken=taken,
                next_pc=next_pc,
                static_target=op.static_target,
                is_two_source_format=op.is_two_source_format,
                is_eliminated_nop=op.is_eliminated_nop,
            )
            seq += 1
            pc = next_pc

    # ------------------------------------------------------------------
    def _mem_address(self, op, access_counts, lcg_state, ws) -> int:
        if op.mem_mode == "stride":
            count = access_counts.get(op.pc, 0)
            access_counts[op.pc] = count + 1
            offset = (count % op.mem_region) * op.mem_stride
            return _DATA_BASE + (op.mem_offset + offset) % ws
        # random and chase address randomly within the working set, via a
        # per-static-op LCG so the sequence is deterministic.
        state = lcg_state.get(op.pc, (op.pc * 2654435761) & _MASK64)
        state = (state * _LCG_MULT + _LCG_INC) & _MASK64
        lcg_state[op.pc] = state
        return (_DATA_BASE + (state >> 16) % ws) & ~7

    def _control_outcome(self, op, pc, rng, loop_counts, jump_rr, num_ops):
        fallthrough = pc + 1 if pc + 1 < num_ops else 0
        if op.branch_kind == "jump":
            index = jump_rr.get(pc, 0)
            if rng.random() < op.jump_primary_weight or len(op.jump_targets) == 1:
                target = op.jump_targets[0]
            else:
                index = (index + 1) % len(op.jump_targets)
                jump_rr[pc] = index
                target = op.jump_targets[index]
            return True, target
        if op.branch_kind == "loop":
            remaining = loop_counts.get(pc)
            if remaining is None:
                # Gaussian trips: few degenerate 1-trip loops, so the exit
                # mispredict rate is about 1/trip_mean per loop execution.
                remaining = max(2, round(rng.gauss(op.trip_mean, op.trip_mean * 0.3)))
            if remaining > 0:
                loop_counts[pc] = remaining - 1
                return True, op.static_target
            loop_counts.pop(pc, None)
            return False, fallthrough
        # if-branch
        if op.static_target is None or op.static_target == fallthrough:
            return False, fallthrough
        if rng.random() < op.branch_bias:
            return True, op.static_target
        return False, fallthrough


def _last_index(recent: list[int], reg: int) -> int:
    for index in range(len(recent) - 1, -1, -1):
        if recent[index] == reg:
            return index
    return -1
