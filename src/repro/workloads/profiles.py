"""Per-benchmark statistical profiles for the synthetic SPEC CINT2000 clones.

The paper evaluates on SPEC CINT2000 Alpha binaries, which are unavailable
here.  Each :class:`BenchmarkProfile` captures the program-level knobs the
paper's measurements depend on — instruction mix, two-source-format density,
zero/duplicate register usage, dependency tightness, branch behaviour,
memory footprint — and drives the generator in
:mod:`repro.workloads.synthetic`.

Each profile also embeds a :class:`PaperReference` with the values the paper
reports for that benchmark (Table 2 base IPCs, Table 3 wakeup-order
statistics), used by EXPERIMENTS.md and the benchmark harness to print
paper-vs-measured rows.  Knob values are calibrated so the headline
characterization fractions land inside the paper's quoted ranges; see
DESIGN.md §3 for the substitution argument.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class PaperReference:
    """Values the paper reports for one benchmark (Tables 2 and 3)."""

    input_set: str
    inst_count_billions: float
    base_ipc_4w: float
    base_ipc_8w: float
    #: Table 3, 4-wide: % of 2-source wakeups whose order matches the last
    #: occurrence at the same PC.
    wakeup_order_same_4w: float
    #: Table 3, 4-wide: % of last-arriving operands on the left.
    last_left_4w: float
    wakeup_order_same_8w: float
    last_left_8w: float


@dataclass(frozen=True)
class BenchmarkProfile:
    """Generator knobs for one synthetic benchmark clone."""

    name: str
    # ---- instruction mix (fractions of the dynamic stream) -------------
    frac_load: float
    frac_store: float
    frac_branch: float
    frac_jump: float = 0.0
    frac_nop2: float = 0.02
    # ---- ALU population composition ------------------------------------
    frac_fp: float = 0.0          # FP fraction of non-memory, non-control ops
    frac_mul: float = 0.01        # integer multiply fraction of ALU ops
    frac_div: float = 0.001       # integer divide fraction of ALU ops
    #: fraction of ALU ops with a 2-register-source encoding (Figure 2)
    frac_alu_two_src_format: float = 0.45
    #: of those, fraction demoted by a zero-register or duplicate operand
    frac_demoted: float = 0.35
    # ---- register dataflow ---------------------------------------------
    #: geometric distribution parameter for dependency distance; higher
    #: means tighter (shorter) dependencies and less ILP
    dep_distance_p: float = 0.30
    #: probability a source operand reads a long-lived register (stack and
    #: global pointers, loop-invariant values) that is ready at insert;
    #: this is the main Figure 4 calibration knob — real integer code has
    #: most operands ready when instructions enter the scheduler
    frac_long_lived_src: float = 0.45
    #: probability that, for a 2-source op, the longer dependency sits in
    #: the left operand slot (controls Table 3 left/right split)
    left_long_dep_bias: float = 0.5
    #: probability one source of a 2-source op reads a recent load result;
    #: load latency differs from ALU latency, so this drives the paper's
    #: observed wakeup slack (Figure 6) and order stability (Table 3)
    load_src_bias: float = 0.45
    # ---- control flow ----------------------------------------------------
    avg_block_size: float = 8.0
    num_blocks: int = 64
    #: probability a block's terminator is a backward loop branch
    frac_loop_branches: float = 0.3
    loop_trip_mean: float = 12.0
    #: taken bias for forward (if-like) branches; values near 0.5 are hard
    #: to predict, values near 0/1 are easy
    branch_bias: float = 0.85
    #: fraction of forward branches drawn with a hard-to-predict bias
    frac_noisy_branches: float = 0.12
    # ---- memory behaviour ------------------------------------------------
    working_set_bytes: int = 256 * 1024
    #: fraction of static memory ops that address randomly within the
    #: working set (the rest walk strides)
    frac_random_access: float = 0.25
    stride_bytes: int = 8
    #: fraction of loads whose result feeds a later address base
    #: (pointer chasing; drives serialized load-load chains as in mcf)
    frac_pointer_chase: float = 0.0
    #: byte footprint over which code blocks are spread (I-cache pressure)
    code_footprint_bytes: int = 16 * 1024
    # ---- paper-reported values ------------------------------------------
    paper: PaperReference | None = None

    def __post_init__(self):
        for field_name in (
            "frac_load",
            "frac_store",
            "frac_branch",
            "frac_jump",
            "frac_nop2",
            "frac_fp",
            "frac_alu_two_src_format",
            "frac_demoted",
            "frac_random_access",
            "frac_pointer_chase",
            "frac_loop_branches",
            "frac_noisy_branches",
        ):
            value = getattr(self, field_name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{self.name}: {field_name}={value} not in [0,1]")
        mix = self.frac_load + self.frac_store + self.frac_branch + self.frac_jump
        if mix >= 0.9:
            raise ConfigurationError(f"{self.name}: mix fractions sum to {mix:.2f}")
        if not 0.0 < self.dep_distance_p < 1.0:
            raise ConfigurationError(f"{self.name}: dep_distance_p out of range")


def _profile(name, **kwargs) -> BenchmarkProfile:
    return BenchmarkProfile(name=name, **kwargs)


#: The twelve SPEC CINT2000 benchmarks of Table 2, in the paper's order.
SPEC_BENCHMARKS = (
    "bzip",
    "crafty",
    "eon",
    "gap",
    "gcc",
    "gzip",
    "mcf",
    "parser",
    "perl",
    "twolf",
    "vortex",
    "vpr",
)


SPEC_PROFILES: dict[str, BenchmarkProfile] = {
    "bzip": _profile(
        "bzip",
        frac_load=0.22,
        frac_store=0.09,
        frac_branch=0.11,
        frac_nop2=0.02,
        frac_alu_two_src_format=0.52,
        frac_demoted=0.33,
        dep_distance_p=0.34,
        branch_bias=0.82,
        frac_noisy_branches=0.1,
        working_set_bytes=1 << 20,
        frac_random_access=0.05,
        frac_long_lived_src=0.45,
        loop_trip_mean=24.0,
        paper=PaperReference("lgred.graphic", 2.64, 1.74, 2.16, 86.9, 51.3, 82.5, 50.0),
    ),
    "crafty": _profile(
        "crafty",
        frac_load=0.27,
        frac_store=0.07,
        frac_branch=0.12,
        frac_nop2=0.03,
        frac_alu_two_src_format=0.48,
        frac_demoted=0.38,
        dep_distance_p=0.2,
        branch_bias=0.88,
        frac_noisy_branches=0.07,
        working_set_bytes=256 * 1024,
        frac_random_access=0.01,
        frac_long_lived_src=0.6,
        loop_trip_mean=10.0,
        paper=PaperReference("crafty.in", 3.0, 1.92, 2.65, 88.4, 49.0, 82.4, 53.9),
    ),
    "eon": _profile(
        "eon",
        frac_load=0.24,
        frac_store=0.13,
        frac_branch=0.09,
        frac_nop2=0.02,
        frac_fp=0.18,
        frac_alu_two_src_format=0.44,
        frac_demoted=0.40,
        dep_distance_p=0.26,
        branch_bias=0.92,
        frac_noisy_branches=0.03,
        working_set_bytes=128 * 1024,
        frac_random_access=0.03,
        frac_long_lived_src=0.5,
        loop_trip_mean=12.0,
        paper=PaperReference("chari.control.cook", 3.0, 2.00, 2.41, 91.3, 49.2, 86.1, 53.1),
    ),
    "gap": _profile(
        "gap",
        frac_load=0.25,
        frac_store=0.08,
        frac_branch=0.10,
        frac_nop2=0.02,
        frac_alu_two_src_format=0.42,
        frac_demoted=0.40,
        dep_distance_p=0.25,
        branch_bias=0.90,
        frac_noisy_branches=0.04,
        working_set_bytes=512 * 1024,
        frac_random_access=0.02,
        frac_long_lived_src=0.5,
        loop_trip_mean=16.0,
        paper=PaperReference("ref.in", 3.0, 1.99, 2.43, 88.3, 49.7, 84.9, 49.4),
    ),
    "gcc": _profile(
        "gcc",
        frac_load=0.24,
        frac_store=0.11,
        frac_branch=0.14,
        frac_jump=0.01,
        frac_nop2=0.04,
        frac_alu_two_src_format=0.46,
        frac_demoted=0.42,
        dep_distance_p=0.28,
        branch_bias=0.84,
        frac_noisy_branches=0.1,
        working_set_bytes=1 << 20,
        frac_random_access=0.02,
        frac_long_lived_src=0.45,
        loop_trip_mean=8.0,
        num_blocks=96,
        code_footprint_bytes=192 * 1024,
        paper=PaperReference("lgred.cp-decl.i", 5.12, 1.52, 1.95, 86.8, 43.8, 90.0, 50.3),
    ),
    "gzip": _profile(
        "gzip",
        frac_load=0.20,
        frac_store=0.08,
        frac_branch=0.12,
        frac_nop2=0.02,
        frac_alu_two_src_format=0.54,
        frac_demoted=0.30,
        dep_distance_p=0.42,
        branch_bias=0.85,
        frac_noisy_branches=0.08,
        working_set_bytes=256 * 1024,
        frac_random_access=0.04,
        frac_long_lived_src=0.3,
        loop_trip_mean=32.0,
        paper=PaperReference("lgred.graphic", 1.79, 1.84, 2.11, 90.1, 43.4, 92.0, 49.0),
    ),
    "mcf": _profile(
        "mcf",
        frac_load=0.30,
        frac_store=0.09,
        frac_branch=0.12,
        frac_nop2=0.02,
        frac_alu_two_src_format=0.40,
        frac_demoted=0.42,
        dep_distance_p=0.40,
        branch_bias=0.78,
        frac_noisy_branches=0.12,
        working_set_bytes=12 << 20,
        frac_random_access=0.6,
        frac_long_lived_src=0.45,
        frac_pointer_chase=0.45,
        loop_trip_mean=8.0,
        paper=PaperReference("lgred.in", 0.79, 0.71, 0.93, 81.4, 44.4, 91.6, 61.5),
    ),
    "parser": _profile(
        "parser",
        frac_load=0.25,
        frac_store=0.09,
        frac_branch=0.13,
        frac_nop2=0.03,
        frac_alu_two_src_format=0.42,
        frac_demoted=0.38,
        dep_distance_p=0.36,
        branch_bias=0.80,
        frac_noisy_branches=0.11,
        working_set_bytes=2 << 20,
        frac_random_access=0.1,
        frac_long_lived_src=0.45,
        frac_pointer_chase=0.10,
        loop_trip_mean=8.0,
        paper=PaperReference("lgred.in", 4.52, 1.24, 1.42, 93.0, 44.2, 93.4, 48.5),
    ),
    "perl": _profile(
        "perl",
        frac_load=0.26,
        frac_store=0.12,
        frac_branch=0.13,
        frac_jump=0.02,
        frac_nop2=0.03,
        frac_alu_two_src_format=0.32,
        frac_demoted=0.50,
        dep_distance_p=0.3,
        left_long_dep_bias=0.73,
        branch_bias=0.82,
        frac_noisy_branches=0.09,
        working_set_bytes=1 << 20,
        frac_random_access=0.02,
        frac_long_lived_src=0.55,
        loop_trip_mean=8.0,
        num_blocks=80,
        code_footprint_bytes=128 * 1024,
        paper=PaperReference("lgred.markerand", 2.06, 1.36, 1.58, 98.1, 72.9, 98.9, 80.3),
    ),
    "twolf": _profile(
        "twolf",
        frac_load=0.24,
        frac_store=0.08,
        frac_branch=0.12,
        frac_nop2=0.02,
        frac_fp=0.06,
        frac_alu_two_src_format=0.50,
        frac_demoted=0.34,
        dep_distance_p=0.34,
        branch_bias=0.81,
        frac_noisy_branches=0.11,
        working_set_bytes=1 << 20,
        frac_random_access=0.08,
        frac_long_lived_src=0.45,
        loop_trip_mean=10.0,
        paper=PaperReference("lgred.in", 0.97, 1.45, 1.65, 87.6, 46.4, 88.5, 50.7),
    ),
    "vortex": _profile(
        "vortex",
        frac_load=0.28,
        frac_store=0.15,
        frac_branch=0.10,
        frac_jump=0.01,
        frac_nop2=0.03,
        frac_alu_two_src_format=0.28,
        frac_demoted=0.55,
        dep_distance_p=0.18,
        left_long_dep_bias=0.29,
        branch_bias=0.94,
        frac_noisy_branches=0.02,
        working_set_bytes=512 * 1024,
        frac_random_access=0.01,
        frac_long_lived_src=0.6,
        loop_trip_mean=14.0,
        num_blocks=72,
        code_footprint_bytes=128 * 1024,
        paper=PaperReference("lgred.raw", 1.15, 2.02, 2.95, 93.4, 28.5, 88.8, 30.4),
    ),
    "vpr": _profile(
        "vpr",
        frac_load=0.26,
        frac_store=0.08,
        frac_branch=0.11,
        frac_nop2=0.02,
        frac_fp=0.10,
        frac_alu_two_src_format=0.52,
        frac_demoted=0.32,
        dep_distance_p=0.33,
        left_long_dep_bias=0.63,
        branch_bias=0.83,
        frac_noisy_branches=0.09,
        working_set_bytes=512 * 1024,
        frac_random_access=0.02,
        frac_long_lived_src=0.45,
        loop_trip_mean=12.0,
        paper=PaperReference("lgred.raw", 1.57, 1.64, 1.88, 92.5, 62.7, 92.5, 65.5),
    ),
}


def get_profile(name: str) -> BenchmarkProfile:
    """Look up a SPEC profile by benchmark name."""
    try:
        return SPEC_PROFILES[name]
    except KeyError:
        known = ", ".join(SPEC_BENCHMARKS)
        raise ConfigurationError(f"unknown benchmark {name!r} (known: {known})") from None
