"""Trace files: persist DynOp streams and replay them later.

The format is line-oriented text (optionally gzip-compressed by file
extension): a header line, then one record per dynamic instruction::

    #repro-trace v1 name=<workload name>
    pc opcode dest srcs deps store_data mem_addr taken next_pc target flags

Empty fields are ``-``; ``srcs``/``deps`` are comma-joined register
numbers; ``flags`` is a letter set (``F`` two-source-format, ``N``
eliminated nop).  Saving a synthetic workload lets experiments decouple
generation from simulation and ship reproducible inputs.
"""

from __future__ import annotations

import gzip
import io
from typing import Iterable, Iterator

from repro.errors import ReproError
from repro.isa.opcodes import OPCODE_BY_NAME
from repro.workloads.feed import collect_stream
from repro.workloads.trace import DynOp

_HEADER_PREFIX = "#repro-trace v1"


class TraceFileError(ReproError):
    """Raised on malformed trace files."""


def _open(path: str, mode: str):
    if str(path).endswith(".gz"):
        return gzip.open(path, mode + "t")
    return open(path, mode)


def _encode_regs(regs: tuple[int, ...]) -> str:
    return ",".join(str(r) for r in regs) if regs else "-"


def _decode_regs(field: str) -> tuple[int, ...]:
    return () if field == "-" else tuple(int(r) for r in field.split(","))


def _encode_opt(value) -> str:
    return "-" if value is None else str(value)


def _decode_opt(field: str) -> int | None:
    return None if field == "-" else int(field)


def save_trace(ops: Iterable[DynOp], path: str, limit: int | None = None, name: str = "trace") -> int:
    """Write up to *limit* ops to *path*; returns the count written."""
    if limit is not None:
        ops = collect_stream(ops, limit)
    count = 0
    with _open(path, "w") as handle:
        handle.write(f"{_HEADER_PREFIX} name={name}\n")
        for op in ops:
            flags = ""
            if op.is_two_source_format:
                flags += "F"
            if op.is_eliminated_nop:
                flags += "N"
            fields = [
                str(op.pc),
                op.opcode,
                _encode_opt(op.dest),
                _encode_regs(op.srcs),
                _encode_regs(op.sched_deps),
                _encode_opt(op.store_data_reg),
                _encode_opt(op.mem_addr),
                "1" if op.taken else "0",
                str(op.next_pc),
                _encode_opt(op.static_target),
                flags or "-",
            ]
            handle.write(" ".join(fields) + "\n")
            count += 1
    return count


def _parse_line(line: str, seq: int, line_number: int) -> DynOp:
    fields = line.split()
    if len(fields) != 11:
        raise TraceFileError(f"line {line_number}: expected 11 fields, got {len(fields)}")
    opcode = fields[1]
    op_info = OPCODE_BY_NAME.get(opcode)
    if op_info is None:
        raise TraceFileError(f"line {line_number}: unknown opcode {opcode!r}")
    flags = fields[10]
    try:
        return DynOp(
            seq=seq,
            pc=int(fields[0]),
            opcode=opcode,
            op_class=op_info.op_class,
            dest=_decode_opt(fields[2]),
            srcs=_decode_regs(fields[3]),
            sched_deps=_decode_regs(fields[4]),
            store_data_reg=_decode_opt(fields[5]),
            mem_addr=_decode_opt(fields[6]),
            taken=fields[7] == "1",
            next_pc=int(fields[8]),
            static_target=_decode_opt(fields[9]),
            is_two_source_format="F" in flags,
            is_eliminated_nop="N" in flags,
        )
    except ValueError as exc:
        raise TraceFileError(f"line {line_number}: {exc}") from None


class TraceFileFeed:
    """A saved trace, replayable as a simulator feed.

    The whole trace is held in memory; iterating yields fresh sequence
    numbers so the feed can drive multiple simulations.
    """

    def __init__(self, path: str):
        self.path = str(path)
        self.name = "trace"
        self.ops: list[DynOp] = []
        self._load()

    def _load(self) -> None:
        with _open(self.path, "r") as handle:
            header = handle.readline().rstrip("\n")
            if not header.startswith(_HEADER_PREFIX):
                raise TraceFileError(f"{self.path}: not a repro trace file")
            if "name=" in header:
                self.name = header.split("name=", 1)[1].strip()
            for line_number, line in enumerate(handle, start=2):
                line = line.strip()
                if not line or line.startswith("#"):
                    continue
                self.ops.append(_parse_line(line, len(self.ops), line_number))

    def __len__(self) -> int:
        return len(self.ops)

    def __iter__(self) -> Iterator[DynOp]:
        return iter(self.ops)

    def pc_address(self, pc: int) -> int:
        return pc * 4


def load_trace(path: str) -> TraceFileFeed:
    """Load a trace file saved by :func:`save_trace`."""
    return TraceFileFeed(path)
