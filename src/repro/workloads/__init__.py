"""Workloads: dynamic instruction streams that drive the timing simulator.

Two stream sources are provided:

* :class:`~repro.workloads.feed.EmulatorFeed` — execution-driven: wraps the
  functional emulator so real HPRISC kernels drive the pipeline;
* :class:`~repro.workloads.synthetic.SyntheticWorkload` — synthetic clones of
  the SPEC CINT2000 benchmarks, generated from per-benchmark statistical
  profiles (see DESIGN.md for the substitution rationale).
"""

from repro.workloads.trace import DynOp, dynop_from_instruction
from repro.workloads.feed import EmulatorFeed, StreamStats, collect_stream
from repro.workloads.profiles import (
    BenchmarkProfile,
    PaperReference,
    SPEC_BENCHMARKS,
    SPEC_PROFILES,
    get_profile,
)
from repro.workloads.synthetic import SyntheticWorkload
from repro.workloads.kernels import KERNELS, kernel_program, kernel_source
from repro.workloads.tracefile import TraceFileFeed, load_trace, save_trace

__all__ = [
    "DynOp",
    "dynop_from_instruction",
    "EmulatorFeed",
    "StreamStats",
    "collect_stream",
    "BenchmarkProfile",
    "PaperReference",
    "SPEC_BENCHMARKS",
    "SPEC_PROFILES",
    "get_profile",
    "SyntheticWorkload",
    "KERNELS",
    "kernel_program",
    "kernel_source",
    "TraceFileFeed",
    "load_trace",
    "save_trace",
]
