"""Dynamic instruction records: the interface between workloads and timing.

A :class:`DynOp` is one dynamic instruction instance carrying everything the
out-of-order core needs to model timing: operand registers, memory address,
control-flow outcome, and the paper's static classifications.

Stores carry their raw two-source encoding for Figure 2 statistics, but their
``sched_deps`` contain only the address base register: per Section 2.3 a
store is handled as an address generation plus a data move, neither of which
needs two source operands, and the cache write happens at commit.
"""

from __future__ import annotations

from repro.isa.instruction import Instruction
from repro.isa.opcodes import OpClass
from repro.isa.registers import is_zero_reg


class DynOp:
    """One dynamic instruction instance.

    Attributes:
        seq: dynamic sequence number (program order).
        pc: static instruction id.
        opcode: opcode mnemonic (e.g. ``"ADD"``).
        op_class: :class:`~repro.isa.opcodes.OpClass` of the operation.
        dest: architectural destination register or None (zero-register
            destinations are already filtered to None).
        srcs: raw encoded source register fields (zero regs included).
        sched_deps: unique non-zero source registers the scheduler must wait
            on, in left-to-right encoding order (store data excluded).
        store_data_reg: for stores, the data source register (or None).
        mem_addr: effective address for loads/stores, else None.
        taken: actual direction for control instructions.
        next_pc: actual next static instruction id.
        static_target: decode-time target for direct branches, else None.
        is_two_source_format / is_eliminated_nop: Figure 2/3 classification.
        dest_value: architectural value written to ``dest`` (execution-driven
            feeds only; None for profile-driven streams).  Consumed by the
            lockstep checker (:mod:`repro.verify.lockstep`), never by timing.
        store_value: value the store writes to memory (same caveats).
    """

    __slots__ = (
        "seq",
        "pc",
        "opcode",
        "op_class",
        "dest",
        "srcs",
        "sched_deps",
        "store_data_reg",
        "mem_addr",
        "taken",
        "next_pc",
        "static_target",
        "is_two_source_format",
        "is_eliminated_nop",
        "dest_value",
        "store_value",
        "is_load",
        "is_store",
        "is_branch",
        "is_control",
        "is_two_source",
    )

    def __init__(
        self,
        seq: int,
        pc: int,
        opcode: str,
        op_class: OpClass,
        dest: int | None = None,
        srcs: tuple[int, ...] = (),
        sched_deps: tuple[int, ...] = (),
        store_data_reg: int | None = None,
        mem_addr: int | None = None,
        taken: bool = False,
        next_pc: int | None = None,
        static_target: int | None = None,
        is_two_source_format: bool = False,
        is_eliminated_nop: bool = False,
        dest_value: int | float | None = None,
        store_value: int | float | None = None,
    ):
        self.seq = seq
        self.pc = pc
        self.opcode = opcode
        self.op_class = op_class
        self.dest = dest
        self.srcs = srcs
        self.sched_deps = sched_deps
        self.store_data_reg = store_data_reg
        self.mem_addr = mem_addr
        self.taken = taken
        self.next_pc = next_pc if next_pc is not None else pc + 1
        self.static_target = static_target
        self.is_two_source_format = is_two_source_format
        self.is_eliminated_nop = is_eliminated_nop
        self.dest_value = dest_value
        self.store_value = store_value
        # Classification flags the scheduler reads on nearly every cycle an
        # instruction is in flight; precomputed here so the hot loop does
        # plain slot reads instead of property descriptors + enum compares.
        is_store = op_class is OpClass.STORE
        self.is_load = op_class is OpClass.LOAD
        self.is_store = is_store
        self.is_branch = op_class is OpClass.BRANCH
        self.is_control = op_class is OpClass.BRANCH or op_class is OpClass.JUMP
        #: the paper's 2-source classification (see Instruction)
        self.is_two_source = (
            not is_store and not is_eliminated_nop and len(sched_deps) == 2
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"DynOp(seq={self.seq}, pc={self.pc}, {self.opcode})"


def dynop_from_instruction(
    seq: int,
    pc: int,
    inst: Instruction,
    mem_addr: int | None = None,
    taken: bool = False,
    next_pc: int | None = None,
    dest_value: int | float | None = None,
    store_value: int | float | None = None,
) -> DynOp:
    """Build a :class:`DynOp` from a decoded static instruction."""
    eliminated = inst.is_eliminated_nop
    if inst.is_store:
        # Address generation depends on the base register; the data register
        # is consumed by the commit-time data move.
        base = inst.srcs[1]
        sched_deps = () if is_zero_reg(base) else (base,)
        store_data = inst.srcs[0]
    else:
        sched_deps = () if eliminated else inst.unique_nonzero_sources
        store_data = None
    dest = inst.dest if inst.writes_register and not eliminated else None
    return DynOp(
        seq=seq,
        pc=pc,
        opcode=inst.opcode.name,
        op_class=inst.op_class,
        dest=dest,
        srcs=inst.srcs,
        sched_deps=sched_deps,
        store_data_reg=store_data,
        mem_addr=mem_addr,
        taken=taken,
        next_pc=next_pc,
        static_target=inst.target,
        is_two_source_format=inst.is_two_source_format,
        is_eliminated_nop=eliminated,
        dest_value=dest_value,
        store_value=store_value,
    )
