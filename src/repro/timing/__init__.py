"""Analytic circuit timing models.

The paper quotes two circuit-level results:

* Section 3.3: a 4-wide, 64-entry scheduler's wakeup+select delay drops
  from **466 ps to 374 ps** (−24.6 %) under sequential wakeup;
* Section 4: a 160-entry register file's access time (CACTI 3.0 model,
  0.18 µm) drops from **1.71 ns to 1.36 ns** (−20.5 %) when read ports go
  from 24 to 16 on an 8-wide machine.

These models reproduce the numbers with Palacharla-style (wakeup) and
CACTI-flavoured (register file) analytic RC forms whose coefficients are
fitted to the paper's anchor points; the *shapes* (delay vs. window size,
ports, entries) follow the published models.
"""

from repro.timing.technology import TECH_0_18_UM, TechnologyNode
from repro.timing.wakeup_delay import WakeupDelayModel
from repro.timing.regfile_delay import RegisterFileDelayModel

__all__ = [
    "TECH_0_18_UM",
    "TechnologyNode",
    "WakeupDelayModel",
    "RegisterFileDelayModel",
]
