"""Palacharla-style wakeup/select delay model (paper Section 3.3).

The wakeup path is tag drive → tag match → match OR.  Tag drive is the
wire-dominated term: the broadcast bus runs past every issue queue entry,
and each entry's height grows with the number of comparators hanging off
the bus.  Sequential wakeup removes one comparator per 2-source entry from
the fast bus, shortening the bus and cutting its capacitive load — that is
the entire circuit argument of the paper.

Delay form (picoseconds at 0.18 µm)::

    L       = entries * (H0 + H1 * comparators_per_entry) * width_factor
    T_drive = D1 * L + D2 * L**2
    T_total = T_MATCH + T_OR + T_drive

Coefficients are fitted so the paper's two anchors come out exactly:
a conventional 4-wide 64-entry scheduler at 466 ps and its sequential
wakeup equivalent at 374 ps (a 24.6 % speedup).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.timing.technology import TECH_0_18_UM, TechnologyNode

#: Comparator match + match-OR delay at 0.18 µm (ps).
_T_MATCH_OR = 170.0
#: Entry height: fixed part (latches, select interface) and per-comparator
#: part, in arbitrary height units.
_H0 = 1.5
_H1 = 1.0
#: Tag-drive RC coefficients (ps per unit, ps per unit^2), fitted to the
#: paper's 466 ps / 374 ps anchor pair.
_D1 = 1.158928571428571
_D2 = 7.254464285714286e-4
#: Select-tree delay: root + per-log4-level (ps), Palacharla's form.
_SELECT_BASE = 120.0
_SELECT_PER_LEVEL = 50.0


@dataclass(frozen=True)
class WakeupDelayModel:
    """Analytic scheduler delay model.

    Attributes:
        technology: process node (delays scale linearly with feature size).
    """

    technology: TechnologyNode = TECH_0_18_UM

    # ------------------------------------------------------------------
    def bus_length(self, entries: int, comparators_per_entry: float, width: int) -> float:
        """Wakeup bus length in height units."""
        if entries <= 0 or comparators_per_entry <= 0 or width <= 0:
            raise ConfigurationError("wakeup model parameters must be positive")
        # Wider machines route more broadcast buses past each entry; the
        # factor is normalized to the paper's 4-wide reference.
        width_factor = 1.0 + 0.1 * (width - 4)
        return entries * (_H0 + _H1 * comparators_per_entry) * width_factor

    def tag_drive_delay(self, entries: int, comparators_per_entry: float, width: int = 4) -> float:
        """Tag drive delay in ps (linear + quadratic wire term)."""
        length = self.bus_length(entries, comparators_per_entry, width)
        return (_D1 * length + _D2 * length * length) * self.technology.delay_scale

    def wakeup_delay(self, entries: int, comparators_per_entry: float, width: int = 4) -> float:
        """Total wakeup delay: tag drive + tag match + match OR (ps)."""
        return (
            _T_MATCH_OR * self.technology.delay_scale
            + self.tag_drive_delay(entries, comparators_per_entry, width)
        )

    def select_delay(self, entries: int) -> float:
        """Selection tree delay in ps (log4 arbitration tree)."""
        if entries <= 0:
            raise ConfigurationError("entries must be positive")
        levels = max(1.0, math.log(entries, 4))
        return (_SELECT_BASE + _SELECT_PER_LEVEL * levels) * self.technology.delay_scale

    def scheduler_delay(self, entries: int, comparators_per_entry: float, width: int = 4) -> float:
        """Atomic wakeup+select loop delay in ps."""
        return self.wakeup_delay(entries, comparators_per_entry, width) + self.select_delay(entries)

    # ------------------------------------------------------------------
    def conventional_delay(self, entries: int = 64, width: int = 4) -> float:
        """Wakeup delay of a conventional scheduler (2 comparators/entry)."""
        return self.wakeup_delay(entries, 2.0, width)

    def sequential_wakeup_delay(self, entries: int = 64, width: int = 4) -> float:
        """Fast-bus wakeup delay under sequential wakeup (1 comparator)."""
        return self.wakeup_delay(entries, 1.0, width)

    def speedup(self, entries: int = 64, width: int = 4) -> float:
        """Fractional wakeup speedup of sequential wakeup (paper: 24.6 %)."""
        base = self.conventional_delay(entries, width)
        fast = self.sequential_wakeup_delay(entries, width)
        return (base - fast) / base

    # ------------------------------------------------------------------
    def broadcast_energy(self, entries: int, comparators_per_entry: float, width: int = 4) -> float:
        """Relative dynamic energy of one tag broadcast.

        Switching energy is C·V²; the dominant capacitance is the wakeup
        bus wire plus the comparator gate loads it drives, both of which
        scale with the bus length computed by :meth:`bus_length`.  Units
        are arbitrary but consistent, so ratios between configurations are
        meaningful (sequential wakeup broadcasts on a shorter fast bus,
        then pays a second, equally short slow-bus broadcast only for
        2-source entries).
        """
        length = self.bus_length(entries, comparators_per_entry, width)
        # Wire capacitance ~ length; comparator load ~ comparators.
        return length + entries * comparators_per_entry * 0.5
