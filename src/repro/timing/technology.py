"""Process technology scaling for the analytic timing models.

Delays are computed at the paper's 0.18 µm node and scaled linearly with
feature size for other nodes — the first-order scaling CACTI 3.0 and the
Palacharla model both assume for gate-dominated paths.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class TechnologyNode:
    """One process node."""

    name: str
    feature_um: float

    def __post_init__(self):
        if self.feature_um <= 0:
            raise ConfigurationError("feature size must be positive")

    @property
    def delay_scale(self) -> float:
        """Delay multiplier relative to the 0.18 µm reference node."""
        return self.feature_um / 0.18


#: The paper's reference node.
TECH_0_18_UM = TechnologyNode("0.18um", 0.18)

#: Other contemporary nodes, for scaling studies.
TECH_0_25_UM = TechnologyNode("0.25um", 0.25)
TECH_0_13_UM = TechnologyNode("0.13um", 0.13)
