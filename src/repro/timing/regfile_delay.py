"""CACTI-3.0-flavoured register file access time and area model (Section 4).

Each additional port adds a wordline, a bitline pair and their wire pitch
to every cell, so cell width and height grow linearly with the port count
— which makes *area quadratic* and *access time roughly linear* in ports,
exactly the trends the paper cites [6][7][8].

Access time form (nanoseconds at 0.18 µm)::

    t = t_decode(entries) + t_sense
      + (W1 * bits + B1 * entries) * (1 + P_GROWTH * ports)

Coefficients are fitted to the paper's anchors: a 160-entry register file
at 0.18 µm reads in **1.71 ns with 24 ports** and **1.36 ns with 16 ports**
(the 8-wide machine's 2-ports-per-slot vs. 1+crossbar... per-slot halving).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.timing.technology import TECH_0_18_UM, TechnologyNode

#: Decode delay: ns per log2(entries), plus sense amplifier time.
_DECODE_PER_BIT = 0.05
_T_SENSE = 0.15
#: Wordline (per data bit) and bitline (per entry) RC coefficients, ns.
_W1 = 7.5e-4
_B1 = 6.0e-4
#: Per-port relative growth of cell dimensions (fitted: ~0.30 per port).
_P_GROWTH = 0.3038194444444444


@dataclass(frozen=True)
class RegisterFileDelayModel:
    """Analytic multi-ported register file model.

    Attributes:
        technology: process node.
        bits: data width of one register (Alpha: 64).
    """

    technology: TechnologyNode = TECH_0_18_UM
    bits: int = 64

    def _check(self, entries: int, ports: int) -> None:
        if entries <= 0 or ports <= 0:
            raise ConfigurationError("register file entries/ports must be positive")

    # ------------------------------------------------------------------
    def access_time(self, entries: int, ports: int) -> float:
        """Read access time in ns."""
        self._check(entries, ports)
        decode = _DECODE_PER_BIT * math.log2(max(2, entries)) + _T_SENSE
        array = (_W1 * self.bits + _B1 * entries) * (1.0 + _P_GROWTH * ports)
        return (decode + array) * self.technology.delay_scale

    def relative_area(self, entries: int, ports: int) -> float:
        """Array area in arbitrary units (quadratic in port count)."""
        self._check(entries, ports)
        cell_dim = 1.0 + _P_GROWTH * ports
        return entries * self.bits * cell_dim * cell_dim

    # ------------------------------------------------------------------
    def port_reduction_speedup(
        self, entries: int, ports_before: int, ports_after: int
    ) -> float:
        """Fractional access-time drop from a port reduction.

        The paper's 8-wide case halves the *read* ports: 24 total ports
        (16 read + 8 write) down to 16 (8 read + 8 write), a 20.5 % drop
        at 160 entries.
        """
        base = self.access_time(entries, ports_before)
        reduced = self.access_time(entries, ports_after)
        return (base - reduced) / base

    def read_energy(self, entries: int, ports: int) -> float:
        """Relative dynamic energy of one read access.

        A read swings one wordline (length ∝ bits × cell width) and
        ``bits`` bitline pairs (length ∝ entries × cell height); both cell
        dimensions grow with the port count, so reducing ports saves
        energy on *every* access, not only cycle time.
        """
        self._check(entries, ports)
        cell_dim = 1.0 + _P_GROWTH * ports
        wordline = self.bits * cell_dim
        bitlines = self.bits * entries * cell_dim * 0.05
        return wordline + bitlines

    def paper_anchor(self) -> tuple[float, float]:
        """The paper's quoted pair: (24-port, 16-port) access times at
        160 entries, 0.18 µm."""
        return self.access_time(160, 24), self.access_time(160, 16)
