"""Lockstep co-simulation: a golden emulator diffed against every commit.

The timing pipeline never computes values — it replays a correct-path
:class:`~repro.workloads.trace.DynOp` stream.  The lockstep checker runs an
*independent* functional :class:`~repro.isa.emulator.Emulator` over the same
program, stepping it exactly once per committed instruction, and diffs every
architectural fact the stream carries: PC, opcode, control-flow outcome,
effective address, destination-register value and stored memory value.

This catches the whole family of commit-stream corruptions a timing bug can
cause — dropped, duplicated, reordered or past-the-end commits — plus any
divergence between the feed's emulator and a fresh one (nondeterminism in
the ISA model itself).  Value fields compare NaN-equal, since FP chains can
legitimately produce NaN on both sides.
"""

from __future__ import annotations

from repro.errors import EmulationError, VerificationError
from repro.isa.assembler import Program
from repro.isa.emulator import Emulator
from repro.workloads.trace import DynOp


def _values_equal(a: int | float, b: int | float) -> bool:
    # NaN compares unequal to itself; two NaNs are a *matching* outcome.
    return a == b or (a != a and b != b)


class DivergenceError(VerificationError):
    """Committed instruction disagrees with the golden emulator.

    Attributes:
        kind: stable category, ``"lockstep-<field>"``.
        seq: dynamic sequence number of the diverging commit.
        cycle: commit cycle at which the divergence was detected.
    """

    def __init__(self, field: str, cycle: int, seq: int, message: str):
        super().__init__(f"[lockstep-{field}] cycle {cycle} seq {seq}: {message}")
        self.kind = f"lockstep-{field}"
        self.cycle = cycle
        self.seq = seq


class LockstepChecker:
    """Golden-emulator diff of the committed instruction stream.

    Example::

        checker = LockstepChecker(program)
        for entry in committed_entries:
            checker.on_commit(entry.op, cycle)
        checker.finish()   # the whole program must have committed
    """

    def __init__(self, program: Program, entry: int = 0):
        self.program = program
        self.golden = Emulator(program, entry=entry)
        #: committed instructions verified so far
        self.commits = 0

    # ------------------------------------------------------------------
    def on_commit(self, op: DynOp, cycle: int) -> None:
        """Step the golden emulator once and diff it against *op*."""
        golden = self.golden
        if golden.halted:
            raise DivergenceError(
                "past-halt", cycle, op.seq,
                f"pipeline committed {op!r} after the golden program halted",
            )
        try:
            record = golden.step()
        except EmulationError as exc:
            raise DivergenceError(
                "emulation", cycle, op.seq,
                f"golden emulator failed at {op!r}: {exc}",
            ) from exc
        inst = record.instruction
        if inst.is_halt:
            raise DivergenceError(
                "past-halt", cycle, op.seq,
                f"golden program is at HALT but pipeline committed {op!r}",
            )
        if record.pc != op.pc:
            raise DivergenceError(
                "pc", cycle, op.seq,
                f"committed pc {op.pc}, golden executed pc {record.pc}",
            )
        if inst.opcode.name != op.opcode:
            raise DivergenceError(
                "opcode", cycle, op.seq,
                f"committed {op.opcode} at pc {op.pc}, golden executed "
                f"{inst.opcode.name}",
            )
        if record.next_pc != op.next_pc:
            raise DivergenceError(
                "next-pc", cycle, op.seq,
                f"committed next_pc {op.next_pc}, golden went to "
                f"{record.next_pc} (pc {op.pc})",
            )
        if bool(record.taken) != bool(op.taken):
            raise DivergenceError(
                "taken", cycle, op.seq,
                f"committed taken={op.taken}, golden taken={record.taken} "
                f"(pc {op.pc})",
            )
        if record.mem_addr != op.mem_addr:
            raise DivergenceError(
                "mem-addr", cycle, op.seq,
                f"committed mem_addr {op.mem_addr}, golden computed "
                f"{record.mem_addr} (pc {op.pc})",
            )
        # Value diffs only where the stream carries values (execution-driven
        # feeds); profile-driven streams leave them None and skip.
        if inst.writes_register and op.dest_value is not None:
            golden_value = golden.read_reg(inst.dest)
            if not _values_equal(golden_value, op.dest_value):
                raise DivergenceError(
                    "dest-value", cycle, op.seq,
                    f"committed dest value {op.dest_value!r}, golden wrote "
                    f"{golden_value!r} (pc {op.pc}, {op.opcode})",
                )
        if inst.is_store and op.store_value is not None:
            golden_value = golden.read_mem(record.mem_addr)
            if not _values_equal(golden_value, op.store_value):
                raise DivergenceError(
                    "store-value", cycle, op.seq,
                    f"committed store value {op.store_value!r}, golden wrote "
                    f"{golden_value!r} (pc {op.pc})",
                )
        self.commits += 1

    # ------------------------------------------------------------------
    def finish(self, cycle: int = -1) -> None:
        """Assert the whole program committed: the golden PC sits at HALT.

        Call only after a run expected to drain the feed completely; a run
        truncated by an instruction budget will legitimately stop early.
        """
        golden = self.golden
        if golden.halted:
            return
        pc = golden.pc
        instructions = self.program.instructions
        if not 0 <= pc < len(instructions) or not instructions[pc].is_halt:
            raise DivergenceError(
                "missing-commits", cycle, self.commits,
                f"pipeline drained after {self.commits} commits but the "
                f"golden program is only at pc {pc} (not HALT)",
            )
