"""Facade combining invariant and lockstep checking behind one object.

``Processor(check=True)`` builds a :class:`PipelineChecker` and calls its
three hooks from the issue, kill and commit paths (each behind a single
``is not None`` test — the unchecked hot loop pays nothing per cycle).

Lockstep co-simulation needs the actual program, so it activates only for
feeds that expose one (``feed.program``, e.g.
:class:`~repro.workloads.feed.EmulatorFeed`); invariant checking works for
any feed, including the scripted streams the unit tests use.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.verify.invariants import InvariantChecker
from repro.verify.lockstep import LockstepChecker

if TYPE_CHECKING:  # pragma: no cover - import cycle avoidance
    from repro.core.iq import IQEntry
    from repro.pipeline.processor import Processor, _Kill


class PipelineChecker:
    """Per-processor verification state: invariants plus optional lockstep."""

    def __init__(self, processor: "Processor"):
        self.processor = processor
        self.invariants = InvariantChecker(processor)
        program = getattr(processor.feed, "program", None)
        if program is not None:
            entry = getattr(processor.feed, "entry", 0)
            self.lockstep: LockstepChecker | None = LockstepChecker(program, entry)
        else:
            self.lockstep = None

    # ------------------------------------------------------------------
    # Hooks called by the Processor.
    # ------------------------------------------------------------------
    def on_issue(
        self, entry: "IQEntry", now: int, seq_access: bool, verify_ok: bool
    ) -> None:
        self.invariants.on_issue(entry, now, seq_access, verify_ok)

    def on_kill(self, kill: "_Kill") -> None:
        self.invariants.on_kill(kill)

    def on_commit(self, entry: "IQEntry", now: int) -> None:
        self.invariants.on_commit(entry, now)
        if self.lockstep is not None:
            self.lockstep.on_commit(entry.op, now)

    # ------------------------------------------------------------------
    def finish(self) -> None:
        """Post-run check: the full program must have committed.

        Only meaningful after a run that drained its feed (not one cut off
        by an instruction budget); :func:`repro.verify.fuzz.check_source`
        sizes its budget so a clean run always drains.
        """
        if self.lockstep is not None:
            self.lockstep.finish(self.processor.now)
