"""Fuzz orchestration: generate, co-simulate, shrink, replay.

One fuzz *case* is a generated program checked under one machine
configuration with every verification layer armed:

1. the program is assembled and pre-validated on the functional emulator
   (it must halt within the step budget — generated programs terminate by
   construction, so a failure here is a generator bug and raises);
2. the timing pipeline runs it with ``Processor(check=True)``: lockstep
   co-simulation plus the in-pipeline invariant checkers
   (:mod:`repro.verify.invariants`);
3. the committed instruction count must equal the emulator's dynamic count,
   and the golden emulator must have reached ``HALT``.

Any violation becomes a :class:`FuzzFailure` with a stable ``kind``; the
shrinker then minimizes the program while the *same kind* keeps firing
under the *same configuration*, and the result is written as a replayable
repro file (:mod:`repro.verify.reprofile`).

The default configuration matrix covers the paper's four machines —
baseline, sequential wakeup, sequential register access and tag
elimination — each under non-selective and selective recovery.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Sequence

from repro.errors import (
    AssemblyError,
    ConfigurationError,
    EmulationError,
    SimulationError,
    VerificationError,
)
from repro.analysis.cache import serialize_result
from repro.fastsim import (
    BACKENDS,
    available_backends,
    make_processor,
    native_available,
    numpy_available,
)
from repro.isa.assembler import assemble
from repro.isa.emulator import Emulator
from repro.pipeline.config import (
    FOUR_WIDE,
    MachineConfig,
    RecoveryModel,
    RegFileModel,
    SchedulerModel,
)
from repro.pipeline.processor import Processor
from repro.verify.progen import GeneratorKnobs, generate_source
from repro.verify.reprofile import REPRO_SUFFIX, ReproCase, read_repro, write_repro
from repro.verify.shrink import shrink_source
from repro.workloads.feed import EmulatorFeed

#: Default functional-emulator step budget per program (a generated
#: program runs a few hundred dynamic instructions; this is ~100x slack).
DEFAULT_BUDGET = 50_000

#: Extra commit budget given to the pipeline beyond the dynamic count, so
#: a buggy pipeline that over-commits is caught as ``commit-count`` rather
#: than looping forever.
_COMMIT_SLACK = 8

#: Per-program seed stride (a large prime, so program streams from nearby
#: base seeds do not overlap).
SEED_STRIDE = 1_000_003

#: Technique axes of the default configuration matrix.
_TECHNIQUES: dict[str, dict] = {
    "base": {},
    "seq-wakeup": {"scheduler": SchedulerModel.SEQ_WAKEUP},
    "seq-regfile": {"regfile": RegFileModel.SEQUENTIAL},
    "tag-elim": {"scheduler": SchedulerModel.TAG_ELIM},
}

#: Recovery axes of the default configuration matrix.
_RECOVERIES: dict[str, RecoveryModel] = {
    "nonsel": RecoveryModel.NON_SELECTIVE,
    "sel": RecoveryModel.SELECTIVE,
}


def config_matrix(
    names: Sequence[str] | None = None, base: MachineConfig = FOUR_WIDE
) -> list[MachineConfig]:
    """Build the fuzzing configuration matrix.

    With no *names*, returns all eight machines: {base, seq-wakeup,
    seq-regfile, tag-elim} x {nonsel, sel}.  *names* filters by full label
    (``"tag-elim+sel"``) or by technique (``"tag-elim"`` selects both
    recovery variants).  Unknown names raise :class:`ConfigurationError`.
    """
    matrix: list[MachineConfig] = []
    matched: set[str] = set()
    for tech_key, techniques in _TECHNIQUES.items():
        for rec_key, recovery in _RECOVERIES.items():
            label = f"{tech_key}+{rec_key}"
            if names is not None:
                if label in names:
                    matched.add(label)
                elif tech_key in names:
                    matched.add(tech_key)
                else:
                    continue
            matrix.append(
                base.with_techniques(recovery=recovery, name=label, **techniques)
            )
    if names is not None:
        unknown = [name for name in names if name not in matched]
        if unknown:
            known = sorted(_TECHNIQUES) + [
                f"{t}+{r}" for t in _TECHNIQUES for r in _RECOVERIES
            ]
            raise ConfigurationError(
                f"unknown fuzz config(s) {', '.join(unknown)}; "
                f"known: {', '.join(known)}"
            )
    return matrix


@dataclass
class FuzzFailure:
    """One verification failure, with enough context to replay it."""

    #: stable category: an invariant/lockstep kind, "deadlock" (watchdog)
    #: or "commit-count"
    kind: str
    config_name: str
    message: str
    source: str
    #: generator seed of the original program (None for replayed cases)
    seed: int | None = None
    #: minimized source, when shrinking succeeded
    shrunk_source: str | None = None
    #: repro file written for this failure, if any
    repro_path: Path | None = None

    @property
    def repro_source(self) -> str:
        """The smallest source known to reproduce the failure."""
        return self.shrunk_source or self.source


@dataclass
class FuzzReport:
    """Outcome of one fuzzing or corpus-replay session."""

    programs: int
    config_names: list[str]
    #: individual (program, config) co-simulation runs executed
    checked: int
    failures: list[FuzzFailure] = field(default_factory=list)
    #: backends compared per run on cross-backend sessions (None otherwise)
    backends: tuple[str, ...] | None = None

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        gate = (
            f" [cross-backend: {' vs '.join(self.backends)}]"
            if self.backends
            else ""
        )
        lines = [
            f"fuzz: {self.programs} program(s) x {len(self.config_names)} "
            f"config(s), {self.checked} runs, "
            f"{len(self.failures)} failure(s){gate}"
        ]
        for failure in self.failures:
            seed = f" seed={failure.seed}" if failure.seed is not None else ""
            lines.append(
                f"  [{failure.kind}] {failure.config_name}{seed}: "
                f"{failure.message}"
            )
        return "\n".join(lines)


def check_source(
    source: str, config: MachineConfig, budget: int = DEFAULT_BUDGET
) -> FuzzFailure | None:
    """Co-simulate one program under one configuration.

    Returns None when every check passes, a :class:`FuzzFailure` otherwise.
    :class:`AssemblyError` and :class:`EmulationError` propagate — the
    program itself (not the pipeline) is broken, which callers treat as
    either a generator bug (fuzzing) or an invalid shrink candidate.
    """
    program = assemble(source)
    golden = Emulator(program)
    steps = golden.run(max_steps=budget)
    dynamic = steps - 1  # run() counts the HALT step; the feed excludes it

    processor = Processor(EmulatorFeed(program), config, check=True)

    def failure(kind: str, message: str) -> FuzzFailure:
        return FuzzFailure(
            kind=kind, config_name=config.name, message=message, source=source
        )

    try:
        result = processor.run(max_insts=dynamic + _COMMIT_SLACK, warmup=0)
    except VerificationError as exc:
        return failure(getattr(exc, "kind", "verification"), str(exc))
    except SimulationError as exc:
        return failure("deadlock", str(exc))
    if result.total_committed != dynamic:
        return failure(
            "commit-count",
            f"pipeline committed {result.total_committed} instructions, "
            f"emulator executed {dynamic}",
        )
    try:
        processor.checker.finish()
    except VerificationError as exc:
        return failure(getattr(exc, "kind", "verification"), str(exc))
    return None


def _first_divergence(
    left: str, right: str, label_l: str = "python", label_r: str = "vector"
) -> str:
    """Locate the first differing leaf between two stats-export payloads."""
    try:
        tree_l, tree_r = json.loads(left), json.loads(right)
    except (TypeError, json.JSONDecodeError):
        return f"{label_l}={left!r} {label_r}={right!r}"

    def walk(a, b, path):
        if isinstance(a, dict) and isinstance(b, dict):
            for key in sorted(set(a) | set(b)):
                hit = walk(a.get(key), b.get(key), f"{path}.{key}")
                if hit:
                    return hit
            return None
        if a != b:
            return f"{path or '<root>'}: {label_l}={a!r} {label_r}={b!r}"
        return None

    return walk(tree_l, tree_r, "") or "payloads differ"


def resolve_cross_backends(
    requested: Sequence[str] | None = None,
) -> tuple[str, ...]:
    """The backend set a cross-backend fuzz run compares.

    With *requested* (e.g. from ``repro fuzz --backends``), every named
    backend must be known and installed — CI legs pin the exact set so a
    missing artifact fails loudly instead of silently narrowing the gate.
    Without it, the gate covers every installed backend and refuses to run
    with fewer than two (python alone compares against nothing).
    """
    if requested is not None:
        backends = []
        for name in requested:
            if name not in BACKENDS:
                raise ConfigurationError(
                    f"unknown backend {name!r}; known: {', '.join(BACKENDS)}"
                )
            if name == "vector" and not numpy_available():
                raise ConfigurationError(
                    "backend 'vector' needs numpy; install it with "
                    "pip install -e .[fast]"
                )
            if name == "native" and not native_available():
                raise ConfigurationError(
                    "backend 'native' needs the compiled extension; build "
                    "it with pip install -e .[native] (requires a C "
                    "compiler)"
                )
            if name not in backends:
                backends.append(name)
    else:
        backends = list(available_backends())
    if len(backends) < 2:
        raise ConfigurationError(
            "cross-backend fuzzing needs at least two installed backends; "
            f"have: {', '.join(backends)} (pip install -e .[fast] adds "
            "vector, pip install -e .[native] adds native)"
        )
    return tuple(backends)


def check_source_cross_backend(
    source: str,
    config: MachineConfig,
    budget: int = DEFAULT_BUDGET,
    backends: Sequence[str] = ("python", "vector"),
) -> FuzzFailure | None:
    """Run one program on every backend and diff the stats exports.

    Each backend simulates the same :class:`EmulatorFeed` with no checker
    attached (only the python backend has one), and the full serialized
    result — the exact payload the result cache and serve layer persist —
    is compared byte-for-byte as canonical JSON against the first backend
    (the reference).  A watchdog deadlock is a legal *matching* outcome as
    long as all backends deadlock at the same cycle; any other asymmetry
    is a ``backend-divergence`` failure naming the first differing leaf.
    """
    program = assemble(source)
    golden = Emulator(program)
    steps = golden.run(max_steps=budget)
    dynamic = steps - 1

    exports: dict[str, str] = {}
    for backend in backends:
        processor = make_processor(
            EmulatorFeed(program), config, backend=backend
        )
        try:
            result = processor.run(max_insts=dynamic + _COMMIT_SLACK, warmup=0)
        except SimulationError as exc:
            exports[backend] = json.dumps(
                {"deadlock_cycle": getattr(exc, "cycle", None)}, sort_keys=True
            )
            continue
        exports[backend] = json.dumps(serialize_result(result), sort_keys=True)
    reference = backends[0]
    for backend in backends[1:]:
        if exports[backend] != exports[reference]:
            return FuzzFailure(
                kind="backend-divergence",
                config_name=config.name,
                message=_first_divergence(
                    exports[reference], exports[backend], reference, backend
                ),
                source=source,
            )
    return None


def _shrink_failure(
    original: FuzzFailure,
    config: MachineConfig,
    budget: int,
    backends: Sequence[str] = ("python", "vector"),
) -> str | None:
    """Minimize a failing program; None if the failure will not re-fire."""
    kind = original.kind
    if kind == "backend-divergence":
        def check(candidate, cfg, bgt):
            return check_source_cross_backend(candidate, cfg, bgt, backends)
    else:
        check = check_source

    def still_fails(candidate: str) -> bool:
        try:
            result = check(candidate, config, budget)
        except (AssemblyError, EmulationError):
            return False  # candidate no longer assembles or halts
        return result is not None and result.kind == kind

    try:
        return shrink_source(original.source, still_fails)
    except ValueError:
        return None  # not deterministic under re-run; keep the original


def _repro_filename(failure: FuzzFailure) -> str:
    config = failure.config_name.replace("+", "_")
    seed = "manual" if failure.seed is None else str(failure.seed)
    return f"seed{seed}-{failure.kind}-{config}{REPRO_SUFFIX}"


def _write_failure(failure: FuzzFailure, corpus_dir: str | Path) -> Path:
    case = ReproCase(
        source=failure.repro_source,
        kind=failure.kind,
        config=failure.config_name,
        seed=failure.seed,
        note=failure.message,
    )
    return write_repro(case, Path(corpus_dir) / _repro_filename(failure))


def run_fuzz(
    programs: int,
    seed: int = 0,
    configs: Sequence[MachineConfig] | None = None,
    budget: int = DEFAULT_BUDGET,
    knobs: GeneratorKnobs | None = None,
    shrink: bool = True,
    corpus_dir: str | Path | None = None,
    max_failures: int = 5,
    raw_seeds: Iterable[int] | None = None,
    progress: Callable[[int, int], None] | None = None,
    cross_backend: bool = False,
    backends: Sequence[str] | None = None,
) -> FuzzReport:
    """Fuzz *programs* random programs across the configuration matrix.

    Per-program generator seeds derive deterministically from *seed*
    (``seed * SEED_STRIDE + i``), so any failure is replayable from its
    reported seed alone (``repro fuzz --gen-seed N``).  *raw_seeds*
    overrides the derivation with explicit generator seeds.  Failures are
    shrunk (unless *shrink* is false) and written to *corpus_dir* when
    given; fuzzing stops early after *max_failures* distinct failures.

    With *cross_backend*, every (program, config) case instead runs on all
    compared cycle-loop backends and diffs the serialized results
    byte-for-byte (:func:`check_source_cross_backend`) — the bit-parity
    gate for the vector and native backends.  *backends* pins the exact
    set (every named backend must be installed); the default is every
    installed backend.
    """
    if cross_backend:
        parity_backends = resolve_cross_backends(backends)

        def check(source, config, budget):
            return check_source_cross_backend(
                source, config, budget, parity_backends
            )
    else:
        parity_backends = ("python", "vector")
        check = check_source
    matrix = list(configs) if configs is not None else config_matrix()
    if raw_seeds is not None:
        seeds = list(raw_seeds)
    else:
        seeds = [seed * SEED_STRIDE + index for index in range(programs)]
    failures: list[FuzzFailure] = []
    checked = 0
    for index, gen_seed in enumerate(seeds):
        source = generate_source(gen_seed, knobs)
        for config in matrix:
            result = check(source, config, budget)
            checked += 1
            if result is None:
                continue
            result.seed = gen_seed
            if shrink:
                result.shrunk_source = _shrink_failure(
                    result, config, budget, parity_backends
                )
            if corpus_dir is not None:
                result.repro_path = _write_failure(result, corpus_dir)
            failures.append(result)
            if len(failures) >= max_failures:
                return FuzzReport(
                    programs=index + 1,
                    config_names=[c.name for c in matrix],
                    checked=checked,
                    failures=failures,
                    backends=parity_backends if cross_backend else None,
                )
        if progress is not None:
            progress(index + 1, len(seeds))
    return FuzzReport(
        programs=len(seeds),
        config_names=[c.name for c in matrix],
        checked=checked,
        failures=failures,
        backends=parity_backends if cross_backend else None,
    )


def replay_corpus(
    path: str | Path,
    configs: Sequence[MachineConfig] | None = None,
    budget: int = DEFAULT_BUDGET,
) -> FuzzReport:
    """Replay a repro file, or every ``*.hpa`` case in a directory.

    Each case runs across the full configuration matrix (not just the
    configuration it was found under): a once-fixed bug must stay fixed
    everywhere.  Replay never shrinks.
    """
    target = Path(path)
    if target.is_file():
        files = [target]
    else:
        files = sorted(target.glob(f"*{REPRO_SUFFIX}"))
    matrix = list(configs) if configs is not None else config_matrix()
    failures: list[FuzzFailure] = []
    checked = 0
    for file in files:
        case = read_repro(file)
        for config in matrix:
            result = check_source(case.source, config, budget)
            checked += 1
            if result is None:
                continue
            result.seed = case.seed
            result.message = f"{file.name}: {result.message}"
            failures.append(result)
    return FuzzReport(
        programs=len(files),
        config_names=[c.name for c in matrix],
        checked=checked,
        failures=failures,
    )
