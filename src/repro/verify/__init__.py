"""Differential verification: fuzzing, lockstep co-simulation, invariants.

The paper's claim that half-price scheduling is *never speculative with
respect to operand readiness* is a correctness property, not a performance
one — so this package provides the correctness backstop for the whole
repository:

* :mod:`repro.verify.progen` — a seeded random-program generator over the
  HPRISC ISA (branches, aliasing loads/stores, long-latency chains,
  0/1/2-source mixes that stress last-arrival prediction);
* :mod:`repro.verify.lockstep` — lockstep co-simulation: the functional
  emulator runs beside the timing pipeline and every committed
  instruction's PC, destination value and memory effect is diffed;
* :mod:`repro.verify.invariants` — in-pipeline checkers (enabled with
  ``Processor(check=True)``) asserting in-order commit, issue/read-port
  caps, operand readiness at issue and fully-squashed replay windows;
* :mod:`repro.verify.shrink` — a greedy test-case minimizer producing
  replayable repro files (:mod:`repro.verify.reprofile`);
* :mod:`repro.verify.fuzz` — the orchestration used by ``repro fuzz`` and
  the CI fuzz gates.

See docs/VERIFICATION.md for the operator's guide.
"""

from repro.verify.checker import PipelineChecker
from repro.verify.fuzz import (
    DEFAULT_BUDGET,
    FuzzFailure,
    FuzzReport,
    check_source,
    check_source_cross_backend,
    config_matrix,
    replay_corpus,
    run_fuzz,
)
from repro.verify.invariants import InvariantChecker, InvariantViolation
from repro.verify.lockstep import DivergenceError, LockstepChecker
from repro.verify.progen import GeneratorKnobs, ProgramGenerator, generate_source
from repro.verify.reprofile import REPRO_SUFFIX, ReproCase, read_repro, write_repro
from repro.verify.shrink import count_instructions, shrink_source

__all__ = [
    "DEFAULT_BUDGET",
    "DivergenceError",
    "FuzzFailure",
    "FuzzReport",
    "GeneratorKnobs",
    "InvariantChecker",
    "InvariantViolation",
    "LockstepChecker",
    "PipelineChecker",
    "ProgramGenerator",
    "REPRO_SUFFIX",
    "ReproCase",
    "check_source",
    "check_source_cross_backend",
    "config_matrix",
    "count_instructions",
    "generate_source",
    "read_repro",
    "replay_corpus",
    "run_fuzz",
    "shrink_source",
    "write_repro",
]
