"""Replayable repro files for fuzz failures.

A repro file is a plain HPRISC assembly file whose leading comment lines
carry structured metadata (``; key: value``).  Because the metadata lines
are ordinary assembly comments, the *whole file* assembles as-is — a
shrunken failure can be pasted straight into ``repro kernel``-style tools,
and the fuzzer replays it with::

    PYTHONPATH=src python -m repro fuzz --replay tests/verify/corpus/<case>.hpa

The regression corpus under ``tests/verify/corpus/`` is a directory of
these files, replayed by the tier-1 suite and by CI.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from pathlib import Path

#: File extension used by repro cases ("HPRISC assembly").
REPRO_SUFFIX = ".hpa"

_HEADER_RE = re.compile(r"^;\s*([a-z][a-z0-9-]*):\s*(.*)$")
#: Metadata keys recognized in the header block.
_KNOWN_KEYS = ("repro-case", "kind", "config", "seed", "note", "replay")


@dataclass
class ReproCase:
    """One replayable failure: assembly source plus provenance metadata."""

    source: str
    #: failure category (an invariant/lockstep kind, or "" if unknown)
    kind: str = ""
    #: machine configuration name the failure fired under
    config: str = ""
    #: generator seed that produced the original program (None for
    #: hand-written cases)
    seed: int | None = None
    #: free-form one-line description
    note: str = ""


def write_repro(case: ReproCase, path: str | Path) -> Path:
    """Write *case* to *path* as a self-describing assembly file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    lines = ["; repro-case: v1"]
    if case.kind:
        lines.append(f"; kind: {case.kind}")
    if case.config:
        lines.append(f"; config: {case.config}")
    if case.seed is not None:
        lines.append(f"; seed: {case.seed}")
    if case.note:
        lines.append(f"; note: {case.note.splitlines()[0]}")
    lines.append(
        f"; replay: PYTHONPATH=src python -m repro fuzz --replay {path}"
    )
    lines.append("")
    body = case.source.rstrip("\n")
    path.write_text("\n".join(lines) + "\n" + body + "\n")
    return path


def read_repro(path: str | Path) -> ReproCase:
    """Parse a repro file back into a :class:`ReproCase`.

    Header parsing is forgiving: the metadata block is whatever prefix of
    the file consists of recognized ``; key: value`` lines (plus blanks);
    everything after it is the program source.  A plain assembly file with
    no header is a valid repro case with empty metadata.
    """
    text = Path(path).read_text()
    case = ReproCase(source="")
    lines = text.splitlines()
    body_start = 0
    for index, line in enumerate(lines):
        stripped = line.strip()
        if not stripped:
            body_start = index + 1
            continue
        match = _HEADER_RE.match(stripped)
        if match is None or match.group(1) not in _KNOWN_KEYS:
            body_start = index
            break
        key, value = match.group(1), match.group(2).strip()
        if key == "kind":
            case.kind = value
        elif key == "config":
            case.config = value
        elif key == "seed":
            try:
                case.seed = int(value)
            except ValueError:
                case.seed = None
        elif key == "note":
            case.note = value
        body_start = index + 1
    else:
        body_start = len(lines)
    case.source = "\n".join(lines[body_start:]).strip("\n") + "\n"
    return case
