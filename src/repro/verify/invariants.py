"""In-pipeline invariant checkers (enabled with ``Processor(check=True)``).

The lockstep checker (:mod:`repro.verify.lockstep`) catches anything that
corrupts the committed value stream, but many scheduler bugs are *timing
only*: an instruction issuing before its operands are ready still commits
the right value, because the timing pipeline never computes values.  These
checkers therefore assert the structural promises of the model itself, from
the outside, with independent bookkeeping:

* **issue-width** / **commit-width** — never more than ``width`` issues or
  commits in one cycle;
* **fu-port** — per-pool issue bandwidth mirrors
  :class:`~repro.pipeline.fu.FunctionalUnits`, including non-pipelined
  divider occupancy;
* **rf-port** — register-file reads per cycle never exceed
  ``config.total_read_ports``, with sequential accesses charging one read
  in the issue cycle and one in the next (Section 4.3);
* **issue-before-ready** — no instruction issues with a pending operand.
  The one legal exception is tag elimination's *speculative* first issue
  (Section 3.1): pending operands are allowed only on the eliminated
  (non-fast) side before any replay, and when ``verify_at_issue`` accepted
  the issue they must be operands whose ready-at-insert bit stands in for
  the scoreboard;
* **stale-operand** — a verified issue never consumes an operand whose
  producing broadcast has been invalidated;
* **commit-state** / **commit-order** — only COMPLETED entries commit, in
  contiguous program (sequence) order;
* **replay-window** — after a windowed (non-selective) kill, nothing
  issued inside the window is still in flight, and a squash-root kill
  leaves its root squashed.

Every violation raises :class:`InvariantViolation` immediately, carrying a
stable ``kind`` string the fuzzer uses to classify and shrink failures.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.iq import EntryState, IQEntry
from repro.errors import VerificationError
from repro.pipeline.config import RegFileModel, SchedulerModel
from repro.pipeline.fu import is_non_pipelined, pool_index

if TYPE_CHECKING:  # pragma: no cover - import cycle avoidance
    from repro.pipeline.processor import Processor, _Kill

#: Display names of the mirrored functional-unit pools.
_POOL_NAMES = ("int_alu", "fp_alu", "int_mult", "fp_mult", "mem_ports")


class InvariantViolation(VerificationError):
    """One broken pipeline invariant.

    Attributes:
        kind: stable machine-readable category (e.g. ``"issue-before-ready"``).
        cycle: simulation cycle at which the violation was detected.
    """

    def __init__(self, kind: str, cycle: int, message: str):
        super().__init__(f"[{kind}] cycle {cycle}: {message}")
        self.kind = kind
        self.cycle = cycle


class InvariantChecker:
    """Independent per-cycle accounting mirroring the pipeline's promises.

    The checker keeps its own issue/port/commit counters — it deliberately
    does not read the pipeline's (a bug in those is what it exists to
    catch).  Hook methods are called by :class:`~repro.pipeline.processor.
    Processor` at issue, kill-processing and commit; nothing runs on cycles
    without those events.
    """

    def __init__(self, processor: "Processor"):
        self.processor = processor
        config = processor.config
        fu_pool = config.fu
        self._pool_counts = (
            fu_pool.int_alu,
            fu_pool.fp_alu,
            fu_pool.int_mult,
            fu_pool.fp_mult,
            fu_pool.mem_ports,
        )
        self._lat = config.lat
        self._width = config.width
        self._read_ports = config.total_read_ports
        self._sequential_rf = config.regfile is RegFileModel.SEQUENTIAL
        self._tag_elim = config.scheduler is SchedulerModel.TAG_ELIM
        # -- per-cycle issue-side state --------------------------------
        self._issue_cycle = -1
        self._issued = 0
        self._pool_issued = [0] * 5
        self._pool_busy: list[list[int]] = [[] for _ in range(5)]
        self._rf_reads = 0
        self._rf_carry = 0  # sequential second reads charged to cycle+1
        # -- per-cycle commit-side state -------------------------------
        self._commit_cycle = -1
        self._commits = 0
        self._next_seq = 0
        #: lifetime tallies (cheap visibility for tests/reports)
        self.issues_checked = 0
        self.commits_checked = 0
        self.kills_checked = 0

    # ------------------------------------------------------------------
    def _sync_issue_cycle(self, now: int) -> None:
        if now == self._issue_cycle:
            return
        # A sequential access's second read lands in the very next cycle;
        # if that cycle had no issues the port was trivially free.
        self._rf_reads = self._rf_carry if now == self._issue_cycle + 1 else 0
        self._rf_carry = 0
        self._issued = 0
        pool_issued = self._pool_issued
        pool_busy = self._pool_busy
        for index in range(5):
            pool_issued[index] = 0
            busy = pool_busy[index]
            if busy:
                pool_busy[index] = [cycle for cycle in busy if cycle > now]
        self._issue_cycle = now

    def on_issue(
        self, entry: IQEntry, now: int, seq_access: bool, verify_ok: bool
    ) -> None:
        """Validate one issue decision (called from ``Processor._issue``)."""
        self._sync_issue_cycle(now)
        self.issues_checked += 1
        op = entry.op

        if self._issued >= self._width:
            raise InvariantViolation(
                "issue-width", now,
                f"{self._issued + 1} issues in one cycle exceeds width "
                f"{self._width} ({op!r})",
            )
        self._issued += 1

        pool = pool_index(op.op_class)
        in_use = self._pool_issued[pool] + len(self._pool_busy[pool])
        if in_use >= self._pool_counts[pool]:
            raise InvariantViolation(
                "fu-port", now,
                f"pool {_POOL_NAMES[pool]} over capacity "
                f"{self._pool_counts[pool]} ({op!r})",
            )
        self._pool_issued[pool] += 1
        if is_non_pipelined(op.op_class):
            self._pool_busy[pool].append(now + self._lat.for_class(op.op_class))

        self._check_read_ports(entry, now, seq_access)
        self._check_readiness(entry, now, verify_ok)

    def _check_read_ports(self, entry: IQEntry, now: int, seq_access: bool) -> None:
        if seq_access and not self._sequential_rf:
            raise InvariantViolation(
                "rf-port", now,
                f"sequential register access under {self.processor.config.regfile} "
                f"({entry.op!r})",
            )
        if seq_access:
            # Figure 11a: first read now, second read (own slot bubbled)
            # in the next cycle.
            self._rf_reads += 1
            self._rf_carry += 1
        else:
            for operand in entry.operands:
                if not operand.woke_now(now):
                    self._rf_reads += 1
        if self._rf_reads > self._read_ports:
            raise InvariantViolation(
                "rf-port", now,
                f"{self._rf_reads} register reads exceed "
                f"{self._read_ports} ports ({entry.op!r})",
            )

    def _check_readiness(self, entry: IQEntry, now: int, verify_ok: bool) -> None:
        if not entry.mem_dep_ready:
            raise InvariantViolation(
                "issue-before-ready", now,
                f"issued with unresolved memory dependence ({entry!r})",
            )
        pending = [operand for operand in entry.operands if not operand.ready]
        if pending:
            # Tag elimination legally issues before the eliminated operand
            # is known ready — but only on the entry's speculative first
            # life, and only for the comparator-less (non-fast) side.
            speculative = (
                self._tag_elim and entry.is_two_source and entry.replays == 0
            )
            if not speculative:
                raise InvariantViolation(
                    "issue-before-ready", now,
                    f"issued with {len(pending)} pending operand(s) ({entry!r})",
                )
            for operand in pending:
                if operand.side is entry.fast_side:
                    raise InvariantViolation(
                        "issue-before-ready", now,
                        f"connected-side operand pending at issue ({entry!r})",
                    )
                if verify_ok and not operand.ready_at_insert:
                    raise InvariantViolation(
                        "issue-before-ready", now,
                        "verify_at_issue accepted an issue whose eliminated "
                        f"operand is pending and was not ready at insert "
                        f"({entry!r})",
                    )
        if verify_ok:
            is_valid = self.processor.scoreboard.is_valid
            for operand in entry.operands:
                if operand.ready and operand.tag is not None and not is_valid(operand.tag):
                    raise InvariantViolation(
                        "stale-operand", now,
                        f"operand ready on invalidated tag {operand.tag} "
                        f"({entry!r})",
                    )

    # ------------------------------------------------------------------
    def on_kill(self, kill: "_Kill") -> None:
        """Validate replay-window cleanup (after ``_process_kill`` ran)."""
        self.kills_checked += 1
        now = self.processor.now
        root = kill.root
        if kill.squash_root and root.state is EntryState.ISSUED:
            raise InvariantViolation(
                "replay-window", now,
                f"squash-root kill left its root issued ({root!r})",
            )
        if kill.window is None:
            return
        start, end = kill.window
        issued = EntryState.ISSUED
        for entry in self.processor.rob:
            if entry is root:
                continue
            if entry.state is issued and start <= entry.issue_cycle <= end:
                raise InvariantViolation(
                    "replay-window", now,
                    f"entry issued in replay window [{start}, {end}] "
                    f"survived the kill ({entry!r})",
                )

    # ------------------------------------------------------------------
    def on_commit(self, entry: IQEntry, now: int) -> None:
        """Validate one commit (called from ``Processor._commit``)."""
        if now != self._commit_cycle:
            self._commit_cycle = now
            self._commits = 0
        self.commits_checked += 1
        if self._commits >= self._width:
            raise InvariantViolation(
                "commit-width", now,
                f"{self._commits + 1} commits in one cycle exceeds width "
                f"{self._width}",
            )
        self._commits += 1
        if entry.state is not EntryState.COMPLETED:
            raise InvariantViolation(
                "commit-state", now,
                f"committed entry in state {entry.state.value} ({entry!r})",
            )
        seq = entry.op.seq
        if seq != self._next_seq:
            raise InvariantViolation(
                "commit-order", now,
                f"committed seq {seq}, expected {self._next_seq} ({entry!r})",
            )
        self._next_seq += 1
