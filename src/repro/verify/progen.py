"""Seeded random HPRISC program generator for differential fuzzing.

The generator emits assembly *source text* (not DynOps), so every fuzz case
is a real program: it assembles, runs on the functional emulator, and drives
the timing pipeline through :class:`~repro.workloads.feed.EmulatorFeed`.
Source text also makes failing cases trivially shrinkable and human-readable
in repro files.

Programs are built from structured segments so termination is guaranteed by
construction:

* backward branches exist only as *counted loops* whose counter registers
  are reserved (never clobbered by random instructions);
* all other branches are forward (if/else diamonds);
* subroutine calls are single-level (``JSR`` through a scratch register,
  straight-line body, ``RET``).

The instruction mix deliberately stresses the paper's machinery: aliasing
loads and stores through overlapping pointers (store-to-load forwarding and
replay storms), long-latency ``DIV``/``MULF`` chains (wakeup slack), and
0/1/2-source operand mixes with zero-register and duplicate-register
demotions (last-arrival prediction and sequential register access).

Divisions are made safe by construction: integer divides always use a
reserved non-zero divisor register or a non-zero immediate, floating
divides a reserved non-zero FP register.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.isa.assembler import Program, assemble

#: Pointer registers, initialized into the shared data region (aliasing).
_POINTERS = ("r1", "r2", "r3")
#: General int scratch registers the generator may clobber freely.
_INT_WORK = tuple(f"r{n}" for n in range(4, 14))
#: Reserved non-zero integer divisor (never written after init).
_INT_DIVISOR = "r14"
#: Scratch register holding JSR targets (clobbered only right before JSR).
_JSR_TARGET = "r15"
#: FP scratch registers.
_FP_WORK = tuple(f"f{n}" for n in range(1, 6))
#: Reserved non-zero FP divisor (loaded from a known-non-zero data word).
_FP_DIVISOR = "f6"
#: Loop counter registers, one per nesting depth (reserved).
_COUNTERS = ("r20", "r21")
#: Subroutine link register (reserved).
_LINK = "r26"

_INT_ALU_RR = ("ADD", "SUB", "AND", "OR", "XOR", "CMPEQ", "CMPLT", "CMPLE")
_INT_ALU_RI = ("ADD", "SUB", "AND", "OR", "XOR", "SLL", "SRL")
_FP_ALU = ("ADDF", "SUBF", "CMPFEQ", "CMPFLT")
_BRANCHES = ("BEQ", "BNE", "BLT", "BGE")


@dataclass(frozen=True)
class GeneratorKnobs:
    """Size and mix parameters of one generated program."""

    #: top-level structured segments (blocks / loops / diamonds / calls)
    segments: int = 8
    #: straight-line block length range (inclusive)
    block_len: tuple[int, int] = (2, 6)
    #: counted-loop iteration range (inclusive; small keeps runs bounded)
    loop_iters: tuple[int, int] = (1, 4)
    #: maximum loop nesting depth (bounded by the counter register pool)
    max_loop_depth: int = 2
    #: maximum number of straight-line subroutines
    subroutines: int = 2
    #: 64-bit words in the shared data region
    data_words: int = 32
    #: byte address of the data region
    region_base: int = 4096
    #: probability that an integer source names the zero register r31
    zero_reg_bias: float = 0.08
    #: probability that a 2-source instruction duplicates one source
    duplicate_bias: float = 0.10


class ProgramGenerator:
    """Deterministic random program builder for one ``(seed, knobs)`` pair.

    Example::

        source = ProgramGenerator(seed=7).source()
        program = assemble(source)
    """

    def __init__(self, seed: int, knobs: GeneratorKnobs | None = None):
        self.seed = seed
        self.knobs = knobs or GeneratorKnobs()
        self.rng = random.Random(seed)
        self._label_counter = 0
        self._subroutines: list[str] = []

    # ------------------------------------------------------------------
    def source(self) -> str:
        """Generate the program's assembly source text."""
        knobs = self.knobs
        rng = self.rng
        sub_count = rng.randint(0, knobs.subroutines)
        self._subroutines = [f"sub{i}" for i in range(sub_count)]

        lines: list[str] = [f"; fuzz program (seed={self.seed})"]
        lines += self._data_section()
        lines += self._init_block()
        for _ in range(knobs.segments):
            lines += self._segment(depth=0)
        lines.append("    HALT")
        for name in self._subroutines:
            lines += self._subroutine(name)
        return "\n".join(lines) + "\n"

    def program(self) -> Program:
        """Generate and assemble the program."""
        return assemble(self.source())

    # ------------------------------------------------------------------
    # Layout pieces.
    # ------------------------------------------------------------------
    def _data_section(self) -> list[str]:
        rng = self.rng
        knobs = self.knobs
        # Word 0 is the FP divisor source: keep it small and non-zero.
        words = [rng.randint(1, 9)]
        words += [rng.randint(-100, 100) for _ in range(knobs.data_words - 1)]
        lines = [f"    .data {knobs.region_base}"]
        for start in range(0, len(words), 8):
            chunk = " ".join(str(w) for w in words[start : start + 8])
            lines.append(f"    .word {chunk}")
        return lines

    def _init_block(self) -> list[str]:
        rng = self.rng
        knobs = self.knobs
        base = knobs.region_base
        lines = [f"    LDI  {_POINTERS[0]}, {base}"]
        for pointer in _POINTERS[1:]:
            lines.append(f"    LDI  {pointer}, {base + 8 * rng.randrange(knobs.data_words)}")
        lines.append(f"    LDI  {_INT_DIVISOR}, {rng.randint(2, 9)}")
        lines.append(f"    LDF  {_FP_DIVISOR}, 0({_POINTERS[0]})")
        for reg in rng.sample(_INT_WORK, 4):
            lines.append(f"    LDI  {reg}, {rng.randint(-50, 50)}")
        for reg in rng.sample(_FP_WORK, 2):
            lines.append(f"    LDF  {reg}, {self._offset()}({_POINTERS[0]})")
        return lines

    def _subroutine(self, name: str) -> list[str]:
        lines = [f"{name}:"]
        for _ in range(self.rng.randint(2, 5)):
            lines += self._instruction()
        lines.append(f"    RET  ({_LINK})")
        return lines

    # ------------------------------------------------------------------
    # Structured segments (recursive, forward-branching except loops).
    # ------------------------------------------------------------------
    def _segment(self, depth: int) -> list[str]:
        rng = self.rng
        choices = ["block", "block", "diamond", "diamond", "loop", "loop"]
        if self._subroutines:
            choices.append("call")
        if depth >= self.knobs.max_loop_depth:
            choices = [c for c in choices if c != "loop"]
        kind = rng.choice(choices)
        if kind == "loop":
            return self._loop(depth)
        if kind == "diamond":
            return self._diamond(depth)
        if kind == "call":
            return self._call()
        return self._block()

    def _block(self) -> list[str]:
        lines: list[str] = []
        for _ in range(self.rng.randint(*self.knobs.block_len)):
            lines += self._instruction()
        return lines

    def _loop(self, depth: int) -> list[str]:
        rng = self.rng
        counter = _COUNTERS[depth]
        label = self._label("loop")
        lines = [f"    LDI  {counter}, {rng.randint(*self.knobs.loop_iters)}"]
        lines.append(f"{label}:")
        for _ in range(rng.randint(1, 2)):
            lines += self._segment(depth + 1)
        lines.append(f"    SUB  {counter}, {counter}, #1")
        lines.append(f"    BNE  {counter}, {label}")
        return lines

    def _diamond(self, depth: int) -> list[str]:
        rng = self.rng
        else_label = self._label("else")
        end_label = self._label("end")
        cond = rng.choice(_INT_WORK + _COUNTERS[: depth and 1])
        lines = [f"    {rng.choice(_BRANCHES)}  {cond}, {else_label}"]
        lines += self._block()
        lines.append(f"    BR   {end_label}")
        lines.append(f"{else_label}:")
        lines += self._block()
        lines.append(f"{end_label}:")
        return lines

    def _call(self) -> list[str]:
        name = self.rng.choice(self._subroutines)
        return [
            f"    LDI  {_JSR_TARGET}, {name}",
            f"    JSR  {_LINK}, ({_JSR_TARGET})",
        ]

    # ------------------------------------------------------------------
    # Random instructions.
    # ------------------------------------------------------------------
    def _instruction(self) -> list[str]:
        """One (occasionally two) random straight-line instructions."""
        rng = self.rng
        kind = rng.choices(
            (
                "alu_rr", "alu_ri", "mul", "div", "fp", "mulf", "divf",
                "load", "store", "fwd_pair", "bump", "mov", "ldi",
                "nop2", "zero_dest", "nop",
            ),
            weights=(18, 10, 5, 3, 8, 4, 2, 14, 10, 4, 5, 4, 5, 2, 2, 1),
        )[0]
        handler = getattr(self, f"_gen_{kind}")
        result = handler()
        return result if isinstance(result, list) else [result]

    def _int_src(self) -> str:
        rng = self.rng
        if rng.random() < self.knobs.zero_reg_bias:
            return "r31"
        return rng.choice(_INT_WORK + _POINTERS + (_INT_DIVISOR,))

    def _int_pair(self) -> tuple[str, str]:
        a = self._int_src()
        if self.rng.random() < self.knobs.duplicate_bias:
            return a, a
        return a, self._int_src()

    def _fp_src(self) -> str:
        rng = self.rng
        if rng.random() < self.knobs.zero_reg_bias:
            return "f31"
        return rng.choice(_FP_WORK + (_FP_DIVISOR,))

    def _offset(self) -> int:
        return 8 * self.rng.randrange(self.knobs.data_words)

    def _gen_alu_rr(self) -> str:
        a, b = self._int_pair()
        return f"    {self.rng.choice(_INT_ALU_RR)}  {self.rng.choice(_INT_WORK)}, {a}, {b}"

    def _gen_alu_ri(self) -> str:
        opcode = self.rng.choice(_INT_ALU_RI)
        imm = self.rng.randint(0, 7) if opcode in ("SLL", "SRL") else self.rng.randint(-16, 16)
        return f"    {opcode}  {self.rng.choice(_INT_WORK)}, {self._int_src()}, #{imm}"

    def _gen_mul(self) -> str:
        a, b = self._int_pair()
        return f"    MUL  {self.rng.choice(_INT_WORK)}, {a}, {b}"

    def _gen_div(self) -> str:
        # Divisor is the reserved non-zero register or a non-zero immediate.
        if self.rng.random() < 0.5:
            return f"    DIV  {self.rng.choice(_INT_WORK)}, {self._int_src()}, {_INT_DIVISOR}"
        return (
            f"    DIV  {self.rng.choice(_INT_WORK)}, {self._int_src()}, "
            f"#{self.rng.choice((2, 3, 5, 7))}"
        )

    def _gen_fp(self) -> str:
        return (
            f"    {self.rng.choice(_FP_ALU)}  {self.rng.choice(_FP_WORK)}, "
            f"{self._fp_src()}, {self._fp_src()}"
        )

    def _gen_mulf(self) -> str:
        return f"    MULF  {self.rng.choice(_FP_WORK)}, {self._fp_src()}, {self._fp_src()}"

    def _gen_divf(self) -> str:
        return f"    DIVF  {self.rng.choice(_FP_WORK)}, {self._fp_src()}, {_FP_DIVISOR}"

    def _gen_load(self) -> str:
        pointer = self.rng.choice(_POINTERS)
        if self.rng.random() < 0.25:
            return f"    LDF  {self.rng.choice(_FP_WORK)}, {self._offset()}({pointer})"
        return f"    LDQ  {self.rng.choice(_INT_WORK)}, {self._offset()}({pointer})"

    def _gen_store(self) -> str:
        pointer = self.rng.choice(_POINTERS)
        if self.rng.random() < 0.25:
            return f"    STF  {self.rng.choice(_FP_WORK)}, {self._offset()}({pointer})"
        return f"    STQ  {self._int_src()}, {self._offset()}({pointer})"

    def _gen_fwd_pair(self) -> list[str]:
        """Store immediately reloaded: exercises store-to-load forwarding."""
        pointer = self.rng.choice(_POINTERS)
        offset = self._offset()
        return [
            f"    STQ  {self._int_src()}, {offset}({pointer})",
            f"    LDQ  {self.rng.choice(_INT_WORK)}, {offset}({pointer})",
        ]

    def _gen_bump(self) -> str:
        """Pointer arithmetic: shifts the aliasing pattern mid-program."""
        pointer = self.rng.choice(_POINTERS)
        return f"    ADD  {pointer}, {pointer}, #{self.rng.choice((-8, 8))}"

    def _gen_mov(self) -> str:
        if self.rng.random() < 0.3:
            return f"    MOVF  {self.rng.choice(_FP_WORK)}, {self._fp_src()}"
        return f"    MOV  {self.rng.choice(_INT_WORK)}, {self._int_src()}"

    def _gen_ldi(self) -> str:
        return f"    LDI  {self.rng.choice(_INT_WORK)}, {self.rng.randint(-1000, 1000)}"

    def _gen_nop2(self) -> str:
        a, b = self._int_pair()
        return f"    NOP2  {a}, {b}"

    def _gen_zero_dest(self) -> str:
        """Operate writing r31: an eliminated architectural nop."""
        a, b = self._int_pair()
        return f"    ADD  r31, {a}, {b}"

    def _gen_nop(self) -> str:
        return "    NOP"

    # ------------------------------------------------------------------
    def _label(self, stem: str) -> str:
        self._label_counter += 1
        return f"{stem}{self._label_counter}"


def generate_source(seed: int, knobs: GeneratorKnobs | None = None) -> str:
    """Generate one random program's assembly source for *seed*."""
    return ProgramGenerator(seed, knobs).source()
