"""Greedy test-case minimization for failing fuzz programs.

The shrinker is a line-oriented ddmin: it deletes chunks of source lines,
keeps any deletion after which the failure *still reproduces*, and halves
the chunk size until single-line deletion reaches a fixpoint.  It knows
nothing about assembly — the caller's ``still_fails`` predicate is the sole
oracle, and it must reject invalid candidates (programs that no longer
assemble, or no longer halt within the emulator budget, e.g. because a
loop's counter-update line was deleted).  The fuzzer's predicate does
exactly that by funnelling candidates through
:func:`repro.verify.fuzz.check_source` and treating assembly or emulation
errors as "does not reproduce".

Shrinking is what turns a 60-instruction random program into the ≤12-line
repro a human can actually debug.
"""

from __future__ import annotations

from typing import Callable

from repro.isa.assembler import assemble

#: Safety valve: maximum candidate evaluations per shrink.
DEFAULT_MAX_TESTS = 2_000


def count_instructions(source: str) -> int:
    """Number of static instructions *source* assembles to."""
    return len(assemble(source))


def _join(lines: list[str]) -> str:
    return "\n".join(lines) + "\n"


def shrink_source(
    source: str,
    still_fails: Callable[[str], bool],
    max_tests: int = DEFAULT_MAX_TESTS,
) -> str:
    """Minimize *source* while ``still_fails(candidate)`` stays true.

    Raises :class:`ValueError` if the original source does not satisfy the
    predicate (nothing to shrink — usually a sign the caller's oracle is
    nondeterministic).
    """
    lines = source.splitlines()
    if not still_fails(_join(lines)):
        raise ValueError("shrink_source: the original input does not fail")

    tests = 0

    def sweep(chunk: int) -> bool:
        """One deletion pass at the given chunk size; True if it shrank."""
        nonlocal lines, tests
        index = 0
        removed_any = False
        while index < len(lines) and tests < max_tests:
            candidate = lines[:index] + lines[index + chunk:]
            tests += 1
            if candidate and still_fails(_join(candidate)):
                lines = candidate
                removed_any = True
                # Retry the same index: the next chunk slid into place.
            else:
                index += chunk
        return removed_any

    chunk = max(1, len(lines) // 2)
    while tests < max_tests:
        shrank = sweep(chunk)
        if chunk > 1:
            chunk //= 2
        elif not shrank:
            break  # single-line fixpoint reached
    return _join(lines)
