"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without catching unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class AssemblyError(ReproError):
    """Raised by the assembler on malformed assembly source."""

    def __init__(self, message: str, line_number: int | None = None):
        self.line_number = line_number
        if line_number is not None:
            message = f"line {line_number}: {message}"
        super().__init__(message)


class EmulationError(ReproError):
    """Raised by the functional emulator on illegal execution."""


class ConfigurationError(ReproError):
    """Raised when a machine or workload configuration is inconsistent."""


class SimulationError(ReproError):
    """Raised when the timing simulator reaches an impossible state.

    Seeing this exception always indicates a bug in the simulator (a broken
    invariant), never a property of the simulated program.
    """


class VerificationError(ReproError):
    """Raised by the differential-verification layer (:mod:`repro.verify`).

    Base class for pipeline invariant violations and lockstep co-simulation
    divergences.  Like :class:`SimulationError`, seeing one means the timing
    simulator (or a mutation injected by a test) is buggy — never the
    simulated program.
    """
